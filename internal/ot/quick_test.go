package ot

import (
	"testing"
	"testing/quick"

	"jupiter/internal/list"
	"jupiter/internal/opid"
)

// mkDoc builds a document of n unique elements.
func mkDoc(n int) *list.Document {
	d := list.NewDocument()
	for i := 0; i < n; i++ {
		_ = d.Insert(i, list.Elem{Val: rune('a' + i%26), ID: opid.OpID{Client: 50, Seq: uint64(i + 1)}})
	}
	return d
}

// opFrom decodes an operation valid on a document of length n from fuzz
// inputs.
func opFrom(isIns bool, rawPos uint16, val byte, d *list.Document, id opid.OpID) Op {
	n := d.Len()
	if isIns || n == 0 {
		return Ins(rune('A'+val%26), int(rawPos)%(n+1), id)
	}
	pos := int(rawPos) % n
	e, _ := d.Get(pos)
	return Del(e, pos, id)
}

// TestQuickCP1 is the testing/quick form of the CP1 property (Definition
// 4.4): for arbitrary concurrent pairs on arbitrary documents,
// σ; o1; o2{o1} == σ; o2; o1{o2}.
func TestQuickCP1(t *testing.T) {
	f := func(docLen uint8, ins1, ins2 bool, p1, p2 uint16, v1, v2 byte) bool {
		d := mkDoc(int(docLen % 12))
		o1 := opFrom(ins1, p1, v1, d, opid.OpID{Client: 1, Seq: 1})
		o2 := opFrom(ins2, p2, v2, d, opid.OpID{Client: 2, Seq: 1})
		return CheckCP1(d, o1, o2) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestQuickTransformPreservesIdentity: transformation never changes an
// operation's identity or element, and only ever moves positions by at most
// one (for a single transform step).
func TestQuickTransformPreservesIdentity(t *testing.T) {
	f := func(docLen uint8, ins1, ins2 bool, p1, p2 uint16, v1, v2 byte) bool {
		d := mkDoc(int(docLen % 12))
		o1 := opFrom(ins1, p1, v1, d, opid.OpID{Client: 1, Seq: 1})
		o2 := opFrom(ins2, p2, v2, d, opid.OpID{Client: 2, Seq: 1})
		tr := Transform(o1, o2)
		if tr.ID != o1.ID {
			return false
		}
		if tr.Kind == KindNop {
			// Only a delete/delete collision on the same element nops.
			return o1.Kind == KindDel && o2.Kind == KindDel && o1.Elem.ID == o2.Elem.ID
		}
		if tr.Kind != o1.Kind || tr.Elem != o1.Elem {
			return false
		}
		dPos := tr.Pos - o1.Pos
		return dPos >= -1 && dPos <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestQuickTransformSeqFold: TransformSeq(o, L) equals the left fold of
// single-step transforms.
func TestQuickTransformSeqFold(t *testing.T) {
	f := func(docLen uint8, p uint16, raw []uint16) bool {
		if len(raw) > 8 {
			raw = raw[:8]
		}
		d := mkDoc(int(docLen%10) + 1)
		o := opFrom(true, p, 'z', d, opid.OpID{Client: 1, Seq: 1})

		// Build a causal chain of inserts from client 2.
		work := d.Clone()
		var seq []Op
		for i, r := range raw {
			op := Ins(rune('A'+i), int(r)%(work.Len()+1), opid.OpID{Client: 2, Seq: uint64(i + 1)})
			if err := Apply(work, op); err != nil {
				return false
			}
			seq = append(seq, op)
		}

		got, _ := TransformSeq(o, seq)
		want := o
		for _, s := range seq {
			want = Transform(want, s)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickNopAbsorbing: Nop is absorbing on the left and neutral on the
// right for Transform.
func TestQuickNopAbsorbing(t *testing.T) {
	f := func(docLen uint8, isIns bool, p uint16, v byte) bool {
		d := mkDoc(int(docLen%12) + 1)
		o := opFrom(isIns, p, v, d, opid.OpID{Client: 1, Seq: 1})
		nop := Nop(opid.OpID{Client: 2, Seq: 1})
		return Transform(o, nop) == o && Transform(nop, o).Kind == KindNop
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
