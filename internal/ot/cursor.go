package ot

// Cursor transformation.
//
// A real collaborative editor must adjust each user's caret and selection
// when a remote operation is executed — the same inclusion-transformation
// idea applied to positions instead of operations. These helpers are not
// part of the paper's formal model but are what any adopter of the library
// wires into a UI; they follow the conventions used by the Jupiter system's
// descendants (Wave/ShareDB):
//
// The semantics are ELEMENT-TRACKING: a caret conceptually sits immediately
// before some element (or at the end), and transformation keeps it before
// that same element:
//
//   - an insert at or before the cursor shifts it right (text inserted at
//     the caret lands before it, as in mainstream collaborative editors);
//   - a delete before the cursor shifts it left;
//   - a delete AT the cursor leaves the index unchanged (the caret slides
//     onto the next element).
//
// The element-tracking property is machine-checked in cursor_test.go.
type Cursor struct {
	// Pos is the caret index, in [0, docLen].
	Pos int
}

// TransformCursor returns the cursor position after executing op on the
// document the cursor lives in.
func TransformCursor(pos int, op Op) int {
	switch op.Kind {
	case KindIns:
		if op.Pos <= pos {
			return pos + 1
		}
		return pos
	case KindDel:
		if op.Pos < pos {
			return pos - 1
		}
		return pos
	default:
		return pos
	}
}

// TransformSelection adjusts a [start, end) selection range (start ≤ end)
// against an executed operation. The anchor-side semantics match
// TransformCursor with ownOp=false at both ends, except that an insertion
// exactly at the selection start does not grow the selection (it lands
// before it).
func TransformSelection(start, end int, op Op) (int, int) {
	switch op.Kind {
	case KindIns:
		switch {
		case op.Pos <= start:
			return start + 1, end + 1
		case op.Pos < end:
			return start, end + 1
		default:
			return start, end
		}
	case KindDel:
		switch {
		case op.Pos < start:
			return start - 1, end - 1
		case op.Pos < end:
			return start, end - 1
		default:
			return start, end
		}
	default:
		return start, end
	}
}
