// Package ot implements the operation model and the operational
// transformation (OT) functions for the replicated list object (Sections 3.1
// and 4.2 of the paper).
//
// An operation is Ins(a, p), Del(a, p), or Nop. Ins and Del carry both the
// element and the position: OT is performed on positions, while the
// strong/weak list specifications refer to the element (footnote 2 of the
// paper). Nop arises when a delete is transformed against a concurrent
// delete of the same element.
//
// The package provides the inclusion transformation Transform (written
// o1{o2} = OT(o1, o2) in the paper) and proves — via the property tests in
// transform_test.go — that it satisfies CP1 (Definition 4.4):
//
//	σ; o1; o2{o1}  =  σ; o2; o1{o2}
package ot

import (
	"fmt"

	"jupiter/internal/list"
	"jupiter/internal/opid"
)

// Kind enumerates the operation kinds of the replicated list object.
type Kind uint8

// Operation kinds. Read is included so recorded histories can model
// Definition 3.1's read events uniformly; reads are never transformed.
const (
	KindIns Kind = iota + 1
	KindDel
	KindNop
	KindRead
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindIns:
		return "Ins"
	case KindDel:
		return "Del"
	case KindNop:
		return "Nop"
	case KindRead:
		return "Read"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Op is a list operation, original or transformed. The identity ID always
// names the ORIGINAL user operation (org(o) in Definition 4.5); transforming
// an operation changes Pos (and possibly Kind, to Nop) but never ID or Elem.
type Op struct {
	Kind Kind
	Elem list.Elem // element inserted/deleted; Elem.ID == ID for insertions
	Pos  int       // 0-based position the operation acts on
	ID   opid.OpID // identity of the original operation
	Pri  int32     // tie-break priority for concurrent same-position inserts
}

// Ins builds an insert operation: element val at position pos, identified by
// id. Priority defaults to the generating client's ID; Fig. 7 of the paper
// assumes "the client with a larger id has a higher priority", and a higher
// priority element ends up earlier in the list when two concurrent inserts
// collide on the same position.
func Ins(val rune, pos int, id opid.OpID) Op {
	return Op{
		Kind: KindIns,
		Elem: list.Elem{Val: val, ID: id},
		Pos:  pos,
		ID:   id,
		Pri:  int32(id.Client),
	}
}

// Del builds a delete operation removing elem from position pos. The op is
// identified by id (the delete's own identity, distinct from the inserted
// element's identity carried in elem).
func Del(elem list.Elem, pos int, id opid.OpID) Op {
	return Op{
		Kind: KindDel,
		Elem: elem,
		Pos:  pos,
		ID:   id,
		Pri:  int32(id.Client),
	}
}

// Nop builds the idle operation that results from transforming a delete
// against a concurrent delete of the same element. It retains the original
// identity so contexts still account for it.
func Nop(id opid.OpID) Op {
	return Op{Kind: KindNop, ID: id}
}

// Read builds a read marker operation used in recorded histories.
func Read(id opid.OpID) Op {
	return Op{Kind: KindRead, ID: id}
}

// IsUpdate reports whether the operation is a list update (Ins or Del), as
// opposed to Nop or Read.
func (o Op) IsUpdate() bool {
	return o.Kind == KindIns || o.Kind == KindDel
}

// String renders the operation, e.g. `Ins(f,1)@c1:1` or `Del(e,5)@c2:1`.
func (o Op) String() string {
	switch o.Kind {
	case KindIns:
		return fmt.Sprintf("Ins(%c,%d)@%s", o.Elem.Val, o.Pos, o.ID)
	case KindDel:
		return fmt.Sprintf("Del(%c,%d)@%s", o.Elem.Val, o.Pos, o.ID)
	case KindNop:
		return fmt.Sprintf("Nop@%s", o.ID)
	case KindRead:
		return fmt.Sprintf("Read@%s", o.ID)
	default:
		return fmt.Sprintf("Op{kind=%d}", o.Kind)
	}
}

// Apply executes the (original or transformed) operation on the document.
// Nop and Read leave the document unchanged. Errors indicate protocol bugs:
// a correctly transformed operation is always applicable.
func Apply(d list.Doc, o Op) error {
	switch o.Kind {
	case KindIns:
		if err := d.Insert(o.Pos, o.Elem); err != nil {
			return fmt.Errorf("apply %s: %w", o, err)
		}
		return nil
	case KindDel:
		if _, err := d.Delete(o.Pos, o.Elem.ID); err != nil {
			return fmt.Errorf("apply %s: %w", o, err)
		}
		return nil
	case KindNop, KindRead:
		return nil
	default:
		return fmt.Errorf("apply: unknown op kind %d", o.Kind)
	}
}
