package ot

import (
	"math/rand"
	"testing"

	"jupiter/internal/list"
	"jupiter/internal/opid"
)

func id(c int32, s uint64) opid.OpID {
	return opid.OpID{Client: opid.ClientID(c), Seq: s}
}

// TestFigure1 reproduces Figure 1 of the paper exactly: two replicas hold
// "efecte"; user 1 invokes o1 = Ins(f, 1), user 2 concurrently invokes
// o2 = Del(e, 5). Without OT the replicas diverge to "effece"/"effect";
// with OT both converge to "effect", and the transform yields
// o2' = Del(e, 6) while o1 is unchanged (Example 4.2).
func TestFigure1(t *testing.T) {
	base := list.FromString("efecte", 100)

	o1 := Ins('f', 1, id(1, 1))
	elem5, err := base.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	o2 := Del(elem5, 5, id(2, 1))

	// Figure 1a: without OT, divergence.
	r1 := base.Clone()
	if err := Apply(r1, o1); err != nil {
		t.Fatal(err)
	}
	if got := r1.String(); got != "effecte" {
		t.Fatalf("R1 after o1: %q, want %q", got, "effecte")
	}
	r1naive := r1.Clone()
	// The naive replay must bypass the element-identity safety check that a
	// real (mis-)execution of untransformed o2 would trip — Figure 1a is
	// precisely the bug the check exists to catch.
	if _, err := r1naive.Delete(5, opid.OpID{}); err != nil {
		t.Fatalf("naive o2 at R1: %v", err)
	}
	if got := r1naive.String(); got != "effece" {
		t.Fatalf("R1 naive: %q, want %q (the motivating divergence)", got, "effece")
	}

	// Figure 1b: with OT.
	o2p := Transform(o2, o1)
	if o2p.Kind != KindDel || o2p.Pos != 6 {
		t.Fatalf("o2{o1} = %s, want Del(e,6)", o2p)
	}
	o1p := Transform(o1, o2)
	if o1p != o1 {
		t.Fatalf("o1{o2} = %s, want unchanged %s", o1p, o1)
	}
	if err := Apply(r1, o2p); err != nil {
		t.Fatal(err)
	}
	if got := r1.String(); got != "effect" {
		t.Fatalf("R1 converged to %q, want %q", got, "effect")
	}

	r2 := base.Clone()
	if err := Apply(r2, o2); err != nil {
		t.Fatal(err)
	}
	if got := r2.String(); got != "efect" {
		t.Fatalf("R2 after o2: %q, want %q", got, "efect")
	}
	if err := Apply(r2, o1p); err != nil {
		t.Fatal(err)
	}
	if got := r2.String(); got != "effect" {
		t.Fatalf("R2 converged to %q, want %q", got, "effect")
	}

	// Figure 1c: the commutative square, via the CP1 checker.
	if err := CheckCP1(base, o1, o2); err != nil {
		t.Fatal(err)
	}
}

func TestTransformInsIns(t *testing.T) {
	tests := []struct {
		name    string
		p1, p2  int
		c1, c2  int32
		wantPos int
	}{
		{"other strictly left shifts", 3, 1, 1, 2, 4},
		{"other right unchanged", 1, 3, 1, 2, 1},
		{"tie, other higher priority shifts me", 2, 2, 1, 2, 3},
		{"tie, other lower priority leaves me", 2, 2, 2, 1, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o1 := Ins('a', tt.p1, id(tt.c1, 1))
			o2 := Ins('b', tt.p2, id(tt.c2, 1))
			got := Transform(o1, o2)
			if got.Pos != tt.wantPos || got.Kind != KindIns {
				t.Errorf("Transform(%s, %s) = %s, want pos %d", o1, o2, got, tt.wantPos)
			}
		})
	}
}

func TestTransformInsDel(t *testing.T) {
	del := Del(list.Elem{Val: 'x', ID: id(9, 9)}, 1, id(2, 1))
	tests := []struct {
		name    string
		insPos  int
		wantPos int
	}{
		{"delete left shifts me left", 3, 2},
		{"delete at my position unchanged", 1, 1},
		{"delete right unchanged", 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := Ins('a', tt.insPos, id(1, 1))
			got := Transform(o, del)
			if got.Pos != tt.wantPos {
				t.Errorf("Transform(%s, %s).Pos = %d, want %d", o, del, got.Pos, tt.wantPos)
			}
		})
	}
}

func TestTransformDelIns(t *testing.T) {
	ins := Ins('a', 1, id(2, 1))
	tests := []struct {
		name    string
		delPos  int
		wantPos int
	}{
		{"insert left shifts me right", 3, 4},
		{"insert at my position shifts me right", 1, 2},
		{"insert right unchanged", 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := Del(list.Elem{Val: 'x', ID: id(9, 9)}, tt.delPos, id(1, 1))
			got := Transform(o, ins)
			if got.Pos != tt.wantPos {
				t.Errorf("Transform(%s, %s).Pos = %d, want %d", o, ins, got.Pos, tt.wantPos)
			}
		})
	}
}

func TestTransformDelDel(t *testing.T) {
	t.Run("left shifts me left", func(t *testing.T) {
		o1 := Del(list.Elem{Val: 'x', ID: id(9, 1)}, 3, id(1, 1))
		o2 := Del(list.Elem{Val: 'y', ID: id(9, 2)}, 1, id(2, 1))
		if got := Transform(o1, o2); got.Pos != 2 {
			t.Errorf("got %s, want pos 2", got)
		}
	})
	t.Run("same element becomes Nop", func(t *testing.T) {
		elem := list.Elem{Val: 'x', ID: id(9, 1)}
		o1 := Del(elem, 3, id(1, 1))
		o2 := Del(elem, 3, id(2, 1))
		got := Transform(o1, o2)
		if got.Kind != KindNop {
			t.Errorf("got %s, want Nop", got)
		}
		if got.ID != o1.ID {
			t.Errorf("Nop lost identity: %v", got.ID)
		}
	})
	t.Run("right unchanged", func(t *testing.T) {
		o1 := Del(list.Elem{Val: 'x', ID: id(9, 1)}, 1, id(1, 1))
		o2 := Del(list.Elem{Val: 'y', ID: id(9, 2)}, 3, id(2, 1))
		if got := Transform(o1, o2); got.Pos != 1 {
			t.Errorf("got %s, want pos 1", got)
		}
	})
}

func TestTransformNopAndRead(t *testing.T) {
	o := Ins('a', 1, id(1, 1))
	nop := Nop(id(2, 1))
	if got := Transform(o, nop); got != o {
		t.Errorf("transforming against Nop changed op: %s", got)
	}
	if got := Transform(nop, o); got.Kind != KindNop {
		t.Errorf("Nop transformed into %s", got)
	}
	rd := Read(id(3, 1))
	if got := Transform(o, rd); got != o {
		t.Errorf("transforming against Read changed op: %s", got)
	}
}

// randomConcurrentOps builds a random document and two random operations
// defined on it, attributed to different clients (hence concurrent and with
// distinct priorities).
func randomConcurrentOps(r *rand.Rand) (list.Doc, Op, Op) {
	n := r.Intn(8)
	doc := list.NewDocument()
	for i := 0; i < n; i++ {
		_ = doc.Insert(i, list.Elem{Val: rune('a' + i), ID: id(50, uint64(i+1))})
	}
	mk := func(client int32) Op {
		if doc.Len() > 0 && r.Intn(2) == 0 {
			pos := r.Intn(doc.Len())
			e, _ := doc.Get(pos)
			return Del(e, pos, id(client, 1))
		}
		return Ins(rune('A'+r.Intn(26)), r.Intn(doc.Len()+1), id(client, 1))
	}
	return doc, mk(1), mk(2)
}

// TestCP1Property verifies Definition 4.4 over a large sample of random
// concurrent operation pairs: σ; o1; o2{o1} == σ; o2; o1{o2}.
func TestCP1Property(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		doc, o1, o2 := randomConcurrentOps(r)
		if err := CheckCP1(doc, o1, o2); err != nil {
			t.Fatalf("iteration %d: %v\n o1=%s o2=%s doc=%q", i, err, o1, o2, doc.String())
		}
	}
}

// TestCP1PropertyReversedPriority re-runs the CP1 property with the
// priority orientation flipped, demonstrating that CP1 holds for any
// consistent priority assignment (the DESIGN.md ablation).
func TestCP1PropertyReversedPriority(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		doc, o1, o2 := randomConcurrentOps(r)
		o1.Pri, o2.Pri = -o1.Pri, -o2.Pri
		if err := CheckCP1(doc, o1, o2); err != nil {
			t.Fatalf("iteration %d: %v\n o1=%s o2=%s doc=%q", i, err, o1, o2, doc.String())
		}
	}
}

func TestTransformPair(t *testing.T) {
	o1 := Ins('a', 2, id(1, 1))
	o2 := Ins('b', 0, id(2, 1))
	p1, p2 := TransformPair(o1, o2)
	if p1.Pos != 3 {
		t.Errorf("o1{o2}.Pos = %d, want 3", p1.Pos)
	}
	if p2.Pos != 0 {
		t.Errorf("o2{o1}.Pos = %d, want 0", p2.Pos)
	}
}

// TestTransformSeq checks o{L}, L{o} against step-by-step manual
// transformation.
func TestTransformSeq(t *testing.T) {
	o := Ins('z', 0, id(1, 1))
	seq := []Op{
		Ins('a', 0, id(2, 1)),
		Ins('b', 1, id(3, 1)),
	}
	got, gotSeq := TransformSeq(o, seq)

	// Manual: o vs seq[0]: both pos 0, seq[0] from client 2 (higher pri than
	// client 1) wins → o at 1. Then vs seq[1]: pos 1 vs 1, client 3 wins →
	// o at 2.
	if got.Pos != 2 {
		t.Errorf("o{L}.Pos = %d, want 2", got.Pos)
	}
	// seq[0] vs o (o at pos 0, lower pri): unchanged at 0.
	if gotSeq[0].Pos != 0 {
		t.Errorf("L{o}[0].Pos = %d, want 0", gotSeq[0].Pos)
	}
	// seq[1] (pos 1) vs o{seq[0]} (pos 1, pri 1 < 3): unchanged.
	if gotSeq[1].Pos != 1 {
		t.Errorf("L{o}[1].Pos = %d, want 1", gotSeq[1].Pos)
	}
	// Source slice untouched.
	if seq[0].Pos != 0 || seq[1].Pos != 1 {
		t.Error("TransformSeq mutated its input")
	}
}

// TestTransformSeqCP1Chain extends CP1 to sequences: applying o then L{o}
// equals applying L then o{L}, over random cases.
func TestTransformSeqCP1Chain(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for iter := 0; iter < 5000; iter++ {
		n := r.Intn(6)
		doc := list.NewDocument()
		for i := 0; i < n; i++ {
			_ = doc.Insert(i, list.Elem{Val: rune('a' + i), ID: id(50, uint64(i+1))})
		}
		// o from client 1; L = a causally ordered chain from client 2
		// (each defined on the document with the previous already applied).
		o := Ins('Z', r.Intn(doc.Len()+1), id(1, 1))

		base := doc.Clone()
		var seq []Op
		work := doc.Clone()
		for k := 0; k < 1+r.Intn(3); k++ {
			var op Op
			if work.Len() > 0 && r.Intn(2) == 0 {
				pos := r.Intn(work.Len())
				e, _ := work.Get(pos)
				op = Del(e, pos, id(2, uint64(k+1)))
			} else {
				op = Ins(rune('A'+k), r.Intn(work.Len()+1), id(2, uint64(k+1)))
			}
			if err := Apply(work, op); err != nil {
				t.Fatal(err)
			}
			seq = append(seq, op)
		}

		oL, seqO := TransformSeq(o, seq)

		// Path 1: o then L{o}.
		d1 := base.Clone()
		if err := Apply(d1, o); err != nil {
			t.Fatal(err)
		}
		for _, s := range seqO {
			if err := Apply(d1, s); err != nil {
				t.Fatalf("iter %d: apply L{o}: %v", iter, err)
			}
		}
		// Path 2: L then o{L}.
		d2 := base.Clone()
		for _, s := range seq {
			if err := Apply(d2, s); err != nil {
				t.Fatal(err)
			}
		}
		if err := Apply(d2, oL); err != nil {
			t.Fatalf("iter %d: apply o{L}: %v", iter, err)
		}

		if !list.ElemsEqual(d1.Elems(), d2.Elems()) {
			t.Fatalf("iter %d: chain CP1 broken: %q vs %q", iter, d1.String(), d2.String())
		}
	}
}

func TestApplyErrors(t *testing.T) {
	doc := list.NewDocument()
	if err := Apply(doc, Ins('a', 5, id(1, 1))); err == nil {
		t.Error("expected error applying out-of-range insert")
	}
	if err := Apply(doc, Op{Kind: 99}); err == nil {
		t.Error("expected error for unknown kind")
	}
	if err := Apply(doc, Nop(id(1, 1))); err != nil {
		t.Errorf("Nop should apply cleanly: %v", err)
	}
	if err := Apply(doc, Read(id(1, 2))); err != nil {
		t.Errorf("Read should apply cleanly: %v", err)
	}
}

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{Ins('f', 1, id(1, 1)), "Ins(f,1)@c1:1"},
		{Del(list.Elem{Val: 'e', ID: id(9, 1)}, 5, id(2, 3)), "Del(e,5)@c2:3"},
		{Nop(id(1, 2)), "Nop@c1:2"},
		{Read(id(3, 1)), "Read@c3:1"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestKindString(t *testing.T) {
	pairs := map[Kind]string{KindIns: "Ins", KindDel: "Del", KindNop: "Nop", KindRead: "Read", Kind(42): "Kind(42)"}
	for k, want := range pairs {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestIsUpdate(t *testing.T) {
	if !Ins('a', 0, id(1, 1)).IsUpdate() {
		t.Error("Ins must be an update")
	}
	if !Del(list.Elem{Val: 'a', ID: id(9, 1)}, 0, id(1, 2)).IsUpdate() {
		t.Error("Del must be an update")
	}
	if Nop(id(1, 3)).IsUpdate() || Read(id(1, 4)).IsUpdate() {
		t.Error("Nop/Read are not updates")
	}
}

// TestInsTieFullDeterminism: even with equal priorities AND equal clients
// (possible only for hand-constructed operations), the tie-break is still
// deterministic and CP1-safe via the sequence-number fallback.
func TestInsTieFullDeterminism(t *testing.T) {
	doc := list.NewDocument()
	o1 := Ins('a', 0, id(1, 1))
	o2 := Ins('b', 0, id(1, 2))
	o1.Pri, o2.Pri = 7, 7
	if err := CheckCP1(doc, o1, o2); err != nil {
		t.Fatal(err)
	}
	// Same client, same priority: larger seq wins the tie.
	tr := Transform(o1, o2)
	if tr.Pos != 1 {
		t.Fatalf("o1{o2}.Pos = %d, want 1 (o2 has larger seq)", tr.Pos)
	}
	if got := Transform(o2, o1); got.Pos != 0 {
		t.Fatalf("o2{o1}.Pos = %d, want 0", got.Pos)
	}
}
