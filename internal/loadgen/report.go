package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/metrics"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
	"jupiter/internal/spec"
)

// OpStats counts what the generator did during the MEASURE phase. Intended
// is the number of arrivals the open-loop schedule called for; Writes and
// Reads are what was actually issued; Acked is how many measure-phase writes
// the server acknowledged (including acks that landed during drain); Errors
// counts writes that could not be issued or were terminally rejected.
type OpStats struct {
	Intended int64 `json:"intended"`
	Writes   int64 `json:"writes"`
	Reads    int64 `json:"reads"`
	Acked    int64 `json:"acked"`
	Errors   int64 `json:"errors"`
	Warmup   int64 `json:"warmupWrites"` // writes issued during warmup (unmeasured)
}

// COStats is the coordinated-omission account: the generator records every
// arrival whose dispatch ran later than its intended time. Latency is
// measured from the INTENDED time, so queueing delay in the generator
// cannot hide server latency; these counters additionally expose how much
// schedule debt built up.
type COStats struct {
	ThresholdMs float64 `json:"thresholdMs"` // lateness below this is jitter, not debt
	DelayedOps  int64   `json:"delayedOps"`  // dispatches later than the threshold
	MaxDebtMs   float64 `json:"maxDebtMs"`   // worst single dispatch lateness
	TotalDebtMs float64 `json:"totalDebtMs"` // summed positive dispatch lateness
}

// SpecResult reports the sampled-history weak-spec runtime check.
type SpecResult struct {
	DocsSampled int      `json:"docsSampled"`
	DocsChecked int      `json:"docsChecked"` // sampled minus overflowed
	Events      int      `json:"events"`      // total history events checked
	Overflowed  []string `json:"overflowed,omitempty"`
	Violations  []string `json:"violations,omitempty"`
}

// SLO declares the acceptance envelope for a run. Zero fields are
// unconstrained.
type SLO struct {
	P99          time.Duration `json:"p99,omitempty"`
	P999         time.Duration `json:"p999,omitempty"`
	MaxErrorRate float64       `json:"maxErrorRate,omitempty"` // errors / intended
	MinRate      float64       `json:"minRate,omitempty"`      // achieved ops/sec floor
}

// SLOResult is the evaluated envelope.
type SLOResult struct {
	Declared   SLO      `json:"declared"`
	Violations []string `json:"violations,omitempty"`
	Pass       bool     `json:"pass"`
}

// Result is the machine-readable report of one load run. It marshals to the
// JSON document cmd/jupiterload emits and scripts/sweep_load.sh consumes.
type Result struct {
	// Workload echo, so a report is self-describing.
	Rate     float64 `json:"targetRate"`
	Docs     int     `json:"docs"`
	Sessions int     `json:"sessions"`
	Conns    int     `json:"conns"`
	Writers  float64 `json:"writerFrac"`
	ZipfS    float64 `json:"zipfS"`
	Seed     int64   `json:"seed"`

	WarmupMs  float64 `json:"warmupMs"`
	MeasureMs float64 `json:"measureMs"`
	DrainMs   float64 `json:"drainMs"`

	Ops          OpStats `json:"ops"`
	AchievedRate float64 `json:"achievedRate"` // measure-phase completed ops (acked writes + reads) / measure seconds

	// LatencyE2E is intended-send → server ack (coordinated-omission
	// corrected); LatencyAck is actual-send → ack (the service view).
	LatencyE2E metrics.HistSnapshot `json:"latencyE2E"`
	LatencyAck metrics.HistSnapshot `json:"latencyAck"`
	CO         COStats              `json:"coordinatedOmission"`

	// Server-side instrumentation scraped from the jupiterd metrics
	// endpoint at drain time (absent when no endpoint was configured).
	Server map[string]metrics.HistSnapshot `json:"server,omitempty"`

	Spec SpecResult `json:"spec"`
	SLO  SLOResult  `json:"slo"`

	// Failures aggregates everything that should fail the run: SLO
	// violations, spec violations, and drain problems.
	Failures []string `json:"failures,omitempty"`
}

// Failed reports whether the run should exit non-zero.
func (r *Result) Failed() bool { return len(r.Failures) > 0 }

// evaluateSLO fills r.SLO and folds violations into r.Failures.
func (r *Result) evaluateSLO(slo SLO) {
	r.SLO.Declared = slo
	add := func(format string, args ...any) {
		r.SLO.Violations = append(r.SLO.Violations, fmt.Sprintf(format, args...))
	}
	if slo.P99 > 0 && r.LatencyE2E.P99Ms > float64(slo.P99)/float64(time.Millisecond) {
		add("p99 %.1fms above SLO %v", r.LatencyE2E.P99Ms, slo.P99)
	}
	if slo.P999 > 0 && r.LatencyE2E.P999Ms > float64(slo.P999)/float64(time.Millisecond) {
		add("p999 %.1fms above SLO %v", r.LatencyE2E.P999Ms, slo.P999)
	}
	if slo.MaxErrorRate > 0 && r.Ops.Intended > 0 {
		if rate := float64(r.Ops.Errors) / float64(r.Ops.Intended); rate > slo.MaxErrorRate {
			add("error rate %.4f above SLO %.4f", rate, slo.MaxErrorRate)
		}
	}
	if slo.MaxErrorRate == 0 && r.Ops.Errors > 0 {
		// No declared budget means zero budget.
		add("%d errors with no declared error budget", r.Ops.Errors)
	}
	if slo.MinRate > 0 && r.AchievedRate < slo.MinRate {
		add("achieved rate %.1f/s below SLO floor %.1f/s", r.AchievedRate, slo.MinRate)
	}
	r.SLO.Pass = len(r.SLO.Violations) == 0
	for _, v := range r.SLO.Violations {
		r.Failures = append(r.Failures, "slo: "+v)
	}
}

// CheckHistory pipes one document's recorded history through the weak list
// specification and convergence checkers, returning human-readable
// violations (empty = the history satisfies both). Exported so tests can
// prove a corrupted history is caught by exactly the path the drain-time
// runtime check uses.
func CheckHistory(doc string, h *core.History) []string {
	var out []string
	if err := h.WellFormed(); err != nil {
		return append(out, fmt.Sprintf("doc %s: recorder: %v", doc, err))
	}
	if err := spec.CheckWeak(h); err != nil {
		out = append(out, fmt.Sprintf("doc %s: %v", doc, err))
	}
	if err := spec.CheckConvergence(h); err != nil {
		out = append(out, fmt.Sprintf("doc %s: %v", doc, err))
	}
	return out
}

// cappedRecorder records a document history up to a cap, then stops and
// marks itself overflowed. A truncated history would produce FALSE
// violations (the checkers need complete visibility), so an overflowed
// document's check is skipped and reported, never run on the partial
// events. Safe for concurrent use.
type cappedRecorder struct {
	mu       sync.Mutex
	hist     *core.History
	capacity int
	overflow bool
}

func newCappedRecorder(capacity int) *cappedRecorder {
	return &cappedRecorder{hist: &core.History{}, capacity: capacity}
}

// Record implements core.Recorder.
func (c *cappedRecorder) Record(replica string, op ot.Op, returned []list.Elem, visible opid.Set) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.overflow || len(c.hist.Events) >= c.capacity {
		c.overflow = true
		return
	}
	c.hist.Append(replica, op, returned, visible)
}

// overflowed reports whether the cap was hit (the history is incomplete).
func (c *cappedRecorder) overflowed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.overflow
}

// history returns the recorded history; call only after the run quiesced
// (every client synced and read), when no recorder can still be appending.
func (c *cappedRecorder) history() *core.History {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hist
}

// scrapeServerHists fetches the jupiterd metrics JSON and extracts the named
// histograms.
func scrapeServerHists(addr string, names ...string) (map[string]metrics.HistSnapshot, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return nil, err
	}
	out := make(map[string]metrics.HistSnapshot)
	for _, n := range names {
		body, ok := raw[n]
		if !ok {
			continue
		}
		var s metrics.HistSnapshot
		if err := json.Unmarshal(body, &s); err == nil {
			out[n] = s
		}
	}
	return out, nil
}

// ------------------------------------------------------------- sweeps ----

// SweepSummary is the rate-sweep report scripts/sweep_load.sh writes to
// BENCH_e15.json: one Result per target rate plus the derived headline, the
// maximum sustainable throughput.
type SweepSummary struct {
	KneeP99Ms       float64   `json:"kneeP99Ms"`       // p99 ceiling for "sustainable"
	MinAchievedFrac float64   `json:"minAchievedFrac"` // achieved/target floor
	Runs            []*Result `json:"runs"`
	MaxSustainable  float64   `json:"maxSustainableRate"`
}

// Finalize derives MaxSustainable: the highest target rate whose run kept
// up (achieved ≥ MinAchievedFrac × target), stayed under the p99 knee,
// passed its spec check, and failed nothing else.
func (s *SweepSummary) Finalize() {
	s.MaxSustainable = 0
	for _, r := range s.Runs {
		if r == nil || r.Failed() {
			continue
		}
		if r.AchievedRate < s.MinAchievedFrac*r.Rate {
			continue
		}
		if s.KneeP99Ms > 0 && r.LatencyE2E.P99Ms > s.KneeP99Ms {
			continue
		}
		if r.Rate > s.MaxSustainable {
			s.MaxSustainable = r.Rate
		}
	}
}

// GateSweep compares two sweep summaries (benchdiff-style): it fails when
// the new max sustainable throughput fell below minRatio × old. The string
// describes the comparison either way.
func GateSweep(oldJSON, newJSON []byte, minRatio float64) (string, error) {
	var oldS, newS SweepSummary
	if err := json.Unmarshal(oldJSON, &oldS); err != nil {
		return "", fmt.Errorf("gate: parse old summary: %w", err)
	}
	if err := json.Unmarshal(newJSON, &newS); err != nil {
		return "", fmt.Errorf("gate: parse new summary: %w", err)
	}
	msg := fmt.Sprintf("max sustainable throughput: old %.0f/s, new %.0f/s (floor %.0f%%)",
		oldS.MaxSustainable, newS.MaxSustainable, minRatio*100)
	if oldS.MaxSustainable <= 0 {
		return msg + " — old baseline empty, nothing to gate", nil
	}
	if newS.MaxSustainable < minRatio*oldS.MaxSustainable {
		return msg, fmt.Errorf("throughput regression: %.0f/s < %.0f%% of %.0f/s",
			newS.MaxSustainable, minRatio*100, oldS.MaxSustainable)
	}
	return msg, nil
}
