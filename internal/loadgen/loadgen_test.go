package loadgen_test

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"jupiter/internal/chaosproxy"
	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/loadgen"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
	"jupiter/internal/server"
)

func checkNoGoroutineLeak(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for time.Now().Before(deadline) {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 64<<10)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d running, baseline %d\n%s", n, base, buf)
	}
}

// TestRunSmoke is the deterministic-seed integration smoke: a low-rate open
// loop against an in-process jupiterd must complete cleanly — converged,
// spec-checked, zero coordinated-omission debt, and live progress snapshots
// whose counters and histogram counts only ever grow.
func TestRunSmoke(t *testing.T) {
	t.Cleanup(checkNoGoroutineLeak(t))
	eng := server.New(server.Config{Addr: "127.0.0.1:0", MetricsAddr: "127.0.0.1:0", Logf: t.Logf})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	}()

	var mu sync.Mutex
	var progress []loadgen.Progress
	cfg := loadgen.Config{
		Addrs:    []string{eng.Addr()},
		Docs:     3,
		Sessions: 12,
		Conns:    5, // doc 0 gets extra conns, exercising cross-conn convergence
		Rate:     200,
		Warmup:   300 * time.Millisecond,
		Duration: 2 * time.Second,
		Drain:    15 * time.Second,
		Workers:  2,
		Seed:     7,
		// At 200/s over 2 workers the schedule has ~10ms between arrivals;
		// a loopback ack is microseconds, so nothing should ever run this
		// late. Any debt here is a generator bug, not host jitter.
		DebtThreshold: 250 * time.Millisecond,
		SpecSample:    2,
		MetricsAddr:   eng.MetricsAddr(),
		ProgressEvery: 100 * time.Millisecond,
		OnProgress: func(p loadgen.Progress) {
			mu.Lock()
			progress = append(progress, p)
			mu.Unlock()
		},
		Logf: t.Logf,
	}
	res, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("run failed: %v", res.Failures)
	}

	if res.Ops.Intended == 0 || res.Ops.Writes == 0 || res.Ops.Reads == 0 {
		t.Fatalf("workload did not flow: %+v", res.Ops)
	}
	if res.Ops.Acked != res.Ops.Writes {
		t.Fatalf("acked %d != writes %d after a clean drain", res.Ops.Acked, res.Ops.Writes)
	}
	if res.Ops.Errors != 0 {
		t.Fatalf("%d errors on a loopback run", res.Ops.Errors)
	}
	if res.LatencyE2E.P50Ms <= 0 || res.LatencyE2E.P99Ms <= 0 || res.LatencyE2E.P999Ms <= 0 {
		t.Fatalf("latency quantiles must be non-zero: %+v", res.LatencyE2E)
	}
	if res.LatencyE2E.P50Ms > res.LatencyE2E.P99Ms || res.LatencyE2E.P99Ms > res.LatencyE2E.P999Ms {
		t.Fatalf("quantiles out of order: %+v", res.LatencyE2E)
	}
	if res.AchievedRate <= 0 {
		t.Fatalf("achieved rate %f", res.AchievedRate)
	}

	// Zero coordinated-omission debt at low rate.
	if res.CO.DelayedOps != 0 {
		t.Fatalf("CO debt at 200/s loopback: %+v", res.CO)
	}

	// The sampled weak-spec runtime check really ran.
	if res.Spec.DocsChecked < 1 || res.Spec.Events == 0 {
		t.Fatalf("spec check did not run: %+v", res.Spec)
	}
	if len(res.Spec.Violations) != 0 {
		t.Fatalf("spec violations: %v", res.Spec.Violations)
	}

	// Server-side histograms were scraped.
	if res.Server["apply_latency"].Count == 0 {
		t.Fatalf("server apply_latency not scraped: %+v", res.Server)
	}
	if res.Server["apply_queue_wait"].Count == 0 {
		t.Fatalf("server apply_queue_wait not scraped: %+v", res.Server)
	}

	// The engine serialized every generated write.
	var seq uint64
	for d := 0; d < cfg.Docs; d++ {
		if st, ok := eng.DocState(fmt.Sprintf("load-%03d", d)); ok {
			seq += st.Seq
		}
	}
	if seq != uint64(res.Ops.Writes+res.Ops.Warmup) {
		t.Fatalf("engine serialized %d ops, generator issued %d", seq, res.Ops.Writes+res.Ops.Warmup)
	}

	// Progress snapshots: counters and histogram counts are monotone.
	mu.Lock()
	defer mu.Unlock()
	if len(progress) < 3 {
		t.Fatalf("only %d progress snapshots over a 2.3s+ run at 100ms", len(progress))
	}
	for i := 1; i < len(progress); i++ {
		prev, cur := progress[i-1], progress[i]
		if cur.Intended < prev.Intended || cur.Writes < prev.Writes ||
			cur.Acked < prev.Acked || cur.Reads < prev.Reads ||
			cur.Errors < prev.Errors || cur.E2E.Count < prev.E2E.Count {
			t.Fatalf("progress retreated between snapshots %d and %d:\n %+v\n %+v", i-1, i, prev, cur)
		}
		if cur.Elapsed <= prev.Elapsed {
			t.Fatalf("progress elapsed not increasing at %d", i)
		}
	}
}

// TestRunConfigErrors pins the config validation: these are caller bugs and
// must fail before any connection is dialed.
func TestRunConfigErrors(t *testing.T) {
	base := loadgen.Config{Addrs: []string{"127.0.0.1:1"}, Docs: 4, Rate: 100, Duration: time.Second}
	cases := []struct {
		name   string
		mutate func(*loadgen.Config)
	}{
		{"no addrs", func(c *loadgen.Config) { c.Addrs = nil }},
		{"no docs", func(c *loadgen.Config) { c.Docs = 0 }},
		{"no rate", func(c *loadgen.Config) { c.Rate = 0 }},
		{"no duration", func(c *loadgen.Config) { c.Duration = 0 }},
		{"conns below docs", func(c *loadgen.Config) { c.Conns = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := loadgen.Run(context.Background(), cfg); err == nil {
				t.Fatal("want config error, got nil")
			}
		})
	}
}

func id(c int32, s uint64) opid.OpID {
	return opid.OpID{Client: opid.ClientID(c), Seq: s}
}

// TestCorruptedHistoryCaught proves the drain-time runtime check actually
// bites: a history whose replicas read the same visible set in different
// orders (a convergence violation) and a history that returns an element
// nobody inserted (a weak-spec violation) must both come back non-empty from
// exactly the code path Run uses at drain time.
func TestCorruptedHistoryCaught(t *testing.T) {
	a, x := id(1, 1), id(2, 1)
	ea, ex := list.Elem{Val: 'a', ID: a}, list.Elem{Val: 'x', ID: x}

	clean := &core.History{}
	clean.Append("c1", ot.Ins('a', 0, a), []list.Elem{ea}, opid.NewSet())
	clean.Append("c2", ot.Ins('x', 0, x), []list.Elem{ex}, opid.NewSet())
	clean.Append("c1", ot.Read(id(-99, 1)), []list.Elem{ea, ex}, opid.NewSet(a, x))
	clean.Append("c2", ot.Read(id(-99, 2)), []list.Elem{ea, ex}, opid.NewSet(a, x))
	if v := loadgen.CheckHistory("clean", clean); len(v) != 0 {
		t.Fatalf("clean history flagged: %v", v)
	}

	// Same visible set, different list order on the two replicas.
	diverged := &core.History{}
	diverged.Append("c1", ot.Ins('a', 0, a), []list.Elem{ea}, opid.NewSet())
	diverged.Append("c2", ot.Ins('x', 0, x), []list.Elem{ex}, opid.NewSet())
	diverged.Append("c1", ot.Read(id(-99, 1)), []list.Elem{ea, ex}, opid.NewSet(a, x))
	diverged.Append("c2", ot.Read(id(-99, 2)), []list.Elem{ex, ea}, opid.NewSet(a, x))
	if v := loadgen.CheckHistory("diverged", diverged); len(v) == 0 {
		t.Fatal("convergence corruption not caught")
	}

	// A read returns an element whose insertion never happened.
	ghost := &core.History{}
	ghost.Append("c1", ot.Ins('a', 0, a), []list.Elem{ea}, opid.NewSet())
	ghost.Append("c1", ot.Read(id(-99, 1)), []list.Elem{ea, {Val: 'g', ID: id(9, 9)}}, opid.NewSet(a))
	if v := loadgen.CheckHistory("ghost", ghost); len(v) == 0 {
		t.Fatal("ghost element not caught")
	}
}

// ---------------------------------------------------- chaos under load ----

// loadChaosSchedules resolves how many seeded chaos-under-load schedules to
// run: the LOAD_CHAOS_SCHEDULES env var (the Makefile's load-chaos target
// and the nightly workflow pin it to the 50-schedule acceptance floor), else
// a short PR-path smoke — each schedule costs seconds of wall clock, unlike
// the millisecond-scale socket/repl chaos schedules.
func loadChaosSchedules() int {
	if s := os.Getenv("LOAD_CHAOS_SCHEDULES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	if testing.Short() {
		return 2
	}
	return 4
}

func startReplCluster(t *testing.T, n int, retry time.Duration) []*server.Engine {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]server.Peer, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = server.Peer{ID: fmt.Sprintf("n%d", i), Addr: ln.Addr().String()}
	}
	engs := make([]*server.Engine, n)
	for i := range engs {
		engs[i] = server.New(server.Config{
			NodeID:    peers[i].ID,
			Cluster:   peers,
			Listener:  lns[i],
			ReplRetry: retry,
		})
		if err := engs[i].Start(); err != nil {
			t.Fatal(err)
		}
	}
	return engs
}

// runLoadChaosSchedule is one seeded schedule of the harness's headline
// composition: open load through a chaosproxy at a 3-node cluster, the
// leader fail-stopped mid-measure. The run must complete, exactly one
// survivor must promote, the error budget and declared latency SLO must
// hold, and the drain barriers + sampled spec check must pass over the
// failover.
func runLoadChaosSchedule(t *testing.T, seed int64) {
	engs := startReplCluster(t, 3, 5*time.Millisecond)
	killed := false
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for i, e := range engs {
			if i == 0 && killed {
				continue
			}
			_ = e.Shutdown(ctx)
		}
	}()

	const nLinks = 6
	proxy := chaosproxy.NewForTest(t, engs[0].Addr(), chaosproxy.Random(seed, nLinks))
	addrs := []string{proxy.Addr(), engs[1].Addr(), engs[2].Addr()}

	const (
		warmup  = 250 * time.Millisecond
		measure = 1500 * time.Millisecond
	)
	cfg := loadgen.Config{
		Addrs:    addrs,
		Docs:     2,
		Sessions: 12,
		Conns:    4,
		Rate:     150,
		Warmup:   warmup,
		Duration: measure,
		Drain:    25 * time.Second,
		Workers:  2,
		Seed:     seed + 1,
		// A failover stalls dispatch while windows are full; that is real
		// debt the report must carry, not an assertion failure.
		DebtThreshold: time.Second,
		SpecSample:    1,
		SLO: loadgen.SLO{
			P999:         20 * time.Second, // drain-bounded; acks buffered across failover
			MaxErrorRate: 0,                // zero error budget: failover must be lossless
		},
		Logf: t.Logf,
	}

	// The kill lands mid-measure, its offset part of the seeded schedule.
	killRng := rand.New(rand.NewSource(seed * 31))
	killAt := warmup + time.Duration(killRng.Int63n(int64(measure*2/3)))
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		time.Sleep(killAt)
		engs[0].Kill()
		proxy.Heal() // injection is over; the backend is gone anyway
	}()

	res, err := loadgen.Run(context.Background(), cfg)
	<-killDone
	killed = true
	if err != nil {
		t.Fatalf("seed %d: run error: %v", seed, err)
	}
	if res.Failed() {
		t.Fatalf("seed %d: run failed: %v", seed, res.Failures)
	}
	if res.Ops.Acked == 0 || res.Ops.Acked != res.Ops.Writes {
		t.Fatalf("seed %d: lossy run: %+v", seed, res.Ops)
	}
	if res.Spec.DocsChecked+len(res.Spec.Overflowed) == 0 {
		t.Fatalf("seed %d: spec sample empty: %+v", seed, res.Spec)
	}

	// Exactly one promotion: n1 took over, n2 deferred.
	if got := engs[1].Metrics().Counter("failovers_total").Value(); got != 1 {
		t.Fatalf("seed %d: n1 failovers_total = %d, want 1", seed, got)
	}
	if got := engs[2].Metrics().Counter("failovers_total").Value(); got != 0 {
		t.Fatalf("seed %d: n2 failovers_total = %d, want 0", seed, got)
	}

	// Post-failover convergence across the survivors: the promoted leader
	// and the follower replicate to identical document states.
	for d := 0; d < cfg.Docs; d++ {
		doc := fmt.Sprintf("load-%03d", d)
		st1, ok := engs[1].DocState(doc)
		if !ok {
			t.Fatalf("seed %d: promoted leader does not host %q", seed, doc)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			st2, ok := engs[2].DocState(doc)
			if ok && st2.Seq == st1.Seq && st2.Text == st1.Text {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("seed %d: follower never converged on %q: leader (seq %d, %d chars), follower (%v, seq %d)",
					seed, doc, st1.Seq, len(st1.Text), ok, st2.Seq)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestChaosUnderLoad composes the load harness with the replication layer's
// fault model: every seeded schedule must survive a mid-measure leader
// fail-stop within a zero error budget and its declared SLO. Nightly runs
// pin LOAD_CHAOS_SCHEDULES=50 (the acceptance floor); the PR path runs a
// short smoke.
func TestChaosUnderLoad(t *testing.T) {
	t.Cleanup(checkNoGoroutineLeak(t))
	schedules := loadChaosSchedules()
	for seed := int64(0); seed < int64(schedules); seed++ {
		ok := t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			runLoadChaosSchedule(t, seed)
		})
		if !ok {
			t.Fatalf("schedule %d failed; stopping the sweep", seed)
		}
	}
}
