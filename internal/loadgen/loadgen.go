// Package loadgen is the open-workload load generator for jupiterd: the
// harness ROADMAP item 5 calls for, and the judge the scale items (sharding,
// GC) are measured by.
//
// Everything measured before this package was closed-loop: a handful of
// clients, each issuing its next operation only after the previous one was
// acknowledged. Closed loops hide latency — a slow server slows the
// generator, so the generator never observes the queueing it causes. This
// generator is OPEN-LOOP: operations arrive on a Poisson schedule at a
// configured aggregate rate whether or not the server keeps up, which is how
// traffic from millions of independent users actually behaves.
//
// Shape. Thousands of lightweight SESSIONS (virtual users) are multiplexed
// over a bounded pool of real TCP connections (one internal/client per
// document, plus extra connections for the hottest documents). Each session
// is pinned to a document — chosen zipfian, so popularity is skewed like
// real corpora — and to a role: writers generate inserts/deletes, readers
// poll the replica. Worker goroutines run independent Poisson arrival
// processes that sum to the target rate; each arrival fires one session.
//
// Measurement. A run has three phases: warmup (ops flow, nothing recorded),
// measure, and drain (generation stops, every in-flight op must be
// acknowledged and every connection must converge). Latency is recorded
// from the op's INTENDED arrival time, not its actual dispatch time, so
// generator lag cannot mask server latency (coordinated omission); the
// schedule debt itself is reported separately. Histograms are per-connection
// and merged for reporting (metrics.Histogram.Merge), so the hot path never
// shares a mutex.
//
// Runtime checking. A configurable sample of documents records complete
// do-event histories which are piped through internal/spec (weak list
// specification + convergence) at drain time — the paper's correctness
// bar enforced while the system is under open load, not just in unit tests.
// A history that outgrows its event cap is skipped and reported, never
// checked partially (a truncated history would produce false violations).
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"jupiter/internal/client"
	"jupiter/internal/metrics"
	"jupiter/internal/opid"
	"jupiter/internal/placement"
)

// Config configures one load run.
type Config struct {
	// Addrs are the server addresses (a replicated cluster's full list).
	Addrs []string
	// Placement, when non-empty, supersedes Addrs: the placement service's
	// route address. Every pool connection routes its document through one
	// shared routing cache, so the run drives a doc-sharded cluster and
	// follows live migrations mid-run.
	Placement string
	// Docs is how many documents the workload spreads over (named
	// DocPrefix + index).
	Docs int
	// DocPrefix names the documents ("" = "load-").
	DocPrefix string
	// Sessions is the number of virtual users (default 4 × Docs).
	Sessions int
	// Rate is the aggregate target arrival rate in ops/sec (required).
	Rate float64
	// Warmup runs load without recording before the measure phase.
	Warmup time.Duration
	// Duration is the measure phase length (required).
	Duration time.Duration
	// Drain bounds the post-measure quiesce: sync + convergence barriers
	// and the spec check (0 = 30s).
	Drain time.Duration
	// WriterFrac is the fraction of sessions that edit; the rest read.
	// 0 = 0.9, negative = no writers.
	WriterFrac float64
	// ZipfS is the zipf skew of document popularity (0 = 1.2; values ≤ 1
	// mean uniform).
	ZipfS float64
	// Conns sizes the TCP connection pool. The pool holds one connection
	// per document (a wire session joins exactly one doc), plus extra
	// connections round-robined onto the most popular documents. 0 = Docs;
	// values below Docs are an error.
	Conns int
	// Workers is the number of generator goroutines, each running an
	// independent Poisson process at Rate/Workers (0 = NumCPU, capped at 16).
	Workers int
	// Seed makes arrival schedules, document assignment, and op content
	// deterministic (0 = 1). Timing still depends on the host.
	Seed int64
	// SpecSample is how many documents record full histories for the
	// drain-time weak-spec check (0 = min(2, Docs); negative = off). The
	// coolest documents are sampled, bounding checker cost; hot documents
	// would overflow SpecMaxEvents and be skipped anyway.
	SpecSample int
	// SpecMaxEvents caps a sampled document's recorded history; an
	// overflowed history is reported and skipped, not checked partially
	// (0 = 4096).
	SpecMaxEvents int
	// DebtThreshold is how late a dispatch may run before it counts as
	// coordinated-omission debt rather than scheduler jitter (0 = 5ms).
	DebtThreshold time.Duration
	// SLO declares the acceptance envelope evaluated into the result.
	SLO SLO
	// MetricsAddr, when non-empty, is the jupiterd metrics endpoint to
	// scrape at drain time for server-side apply/queue latency.
	MetricsAddr string
	// Codec / Window / BatchOps pass through to internal/client.
	Codec    string
	Window   int
	BatchOps int
	// Progress, when non-nil, receives live one-line status updates.
	Progress io.Writer
	// ProgressEvery paces progress output and OnProgress (0 = 5s).
	ProgressEvery time.Duration
	// OnProgress, when non-nil, observes each live snapshot (tests assert
	// monotone counters with it).
	OnProgress func(Progress)
	// Logf, when non-nil, receives connection-level events.
	Logf func(format string, args ...any)
}

func (c *Config) docPrefix() string {
	if c.DocPrefix == "" {
		return "load-"
	}
	return c.DocPrefix
}

func (c *Config) sessions() int {
	if c.Sessions <= 0 {
		return 4 * c.Docs
	}
	return c.Sessions
}

func (c *Config) drain() time.Duration {
	if c.Drain <= 0 {
		return 30 * time.Second
	}
	return c.Drain
}

func (c *Config) writerFrac() float64 {
	if c.WriterFrac == 0 {
		return 0.9
	}
	if c.WriterFrac < 0 {
		return 0
	}
	return c.WriterFrac
}

func (c *Config) zipfS() float64 {
	if c.ZipfS == 0 {
		return 1.2
	}
	return c.ZipfS
}

func (c *Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	w := runtime.NumCPU()
	if w > 16 {
		w = 16
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (c *Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

func (c *Config) specSample() int {
	if c.SpecSample < 0 {
		return 0
	}
	if c.SpecSample == 0 {
		if c.Docs < 2 {
			return c.Docs
		}
		return 2
	}
	if c.SpecSample > c.Docs {
		return c.Docs
	}
	return c.SpecSample
}

func (c *Config) specMaxEvents() int {
	if c.SpecMaxEvents <= 0 {
		return 4096
	}
	return c.SpecMaxEvents
}

func (c *Config) debtThreshold() time.Duration {
	if c.DebtThreshold <= 0 {
		return 5 * time.Millisecond
	}
	return c.DebtThreshold
}

func (c *Config) progressEvery() time.Duration {
	if c.ProgressEvery <= 0 {
		return 5 * time.Second
	}
	return c.ProgressEvery
}

// Progress is one live status snapshot.
type Progress struct {
	Elapsed  time.Duration
	Phase    string // "warmup", "measure", "drain"
	Intended int64
	Writes   int64
	Acked    int64
	Reads    int64
	Errors   int64
	Delayed  int64
	E2E      metrics.HistSnapshot
}

func (p Progress) String() string {
	return fmt.Sprintf("[load] t=%s phase=%s intended=%d writes=%d acked=%d reads=%d errs=%d delayed=%d p50=%.1fms p99=%.1fms p999=%.1fms",
		p.Elapsed.Truncate(100*time.Millisecond), p.Phase, p.Intended, p.Writes, p.Acked,
		p.Reads, p.Errors, p.Delayed, p.E2E.P50Ms, p.E2E.P99Ms, p.E2E.P999Ms)
}

// pendEntry is one in-flight write awaiting its ack.
type pendEntry struct {
	intended time.Time
	sent     time.Time
	measure  bool
}

// poolConn is one TCP connection of the pool: the client, its in-flight op
// table, and its private latency histograms (merged at reporting time).
type poolConn struct {
	cl  *client.Client
	doc int

	mu      sync.Mutex
	pending map[opid.OpID]pendEntry
	early   map[opid.OpID]time.Time // acks that raced ahead of track()

	e2e metrics.Histogram // intended → ack
	ack metrics.Histogram // sent → ack
}

// track registers a generated op. The ack can arrive (on the client's
// manager goroutine) before the generator returns from InsertID — the early
// table catches that ordering.
func (pc *poolConn) track(st *stats, id opid.OpID, intended, sent time.Time, measure bool) {
	pc.mu.Lock()
	if at, ok := pc.early[id]; ok {
		delete(pc.early, id)
		pc.mu.Unlock()
		pc.observe(st, at, pendEntry{intended, sent, measure})
		return
	}
	pc.pending[id] = pendEntry{intended, sent, measure}
	pc.mu.Unlock()
}

// onAck resolves one acknowledged op. Called with the client's lock held —
// it must stay cheap and never call back into the client.
func (pc *poolConn) onAck(st *stats, id opid.OpID) {
	now := time.Now()
	pc.mu.Lock()
	e, ok := pc.pending[id]
	if !ok {
		pc.early[id] = now
		pc.mu.Unlock()
		return
	}
	delete(pc.pending, id)
	pc.mu.Unlock()
	pc.observe(st, now, e)
}

func (pc *poolConn) observe(st *stats, ackedAt time.Time, e pendEntry) {
	if !e.measure {
		return
	}
	st.acked.Add(1)
	pc.e2e.Observe(ackedAt.Sub(e.intended))
	pc.ack.Observe(ackedAt.Sub(e.sent))
}

// session is one virtual user: a document (via its pool connection), a
// role, and the rune it types.
type session struct {
	pc     *poolConn
	writer bool
	val    rune
}

// stats are the run's shared counters (hot-path: atomics only).
type stats struct {
	intended atomic.Int64
	writes   atomic.Int64
	reads    atomic.Int64
	acked    atomic.Int64
	errors   atomic.Int64
	warmup   atomic.Int64
	delayed  atomic.Int64
	debtNs   atomic.Int64
	maxDebt  atomic.Int64
}

func (s *stats) noteDebt(late time.Duration, threshold time.Duration) {
	ns := late.Nanoseconds()
	s.debtNs.Add(ns)
	for {
		cur := s.maxDebt.Load()
		if ns <= cur || s.maxDebt.CompareAndSwap(cur, ns) {
			break
		}
	}
	if late > threshold {
		s.delayed.Add(1)
	}
}

// Run executes one load run: build the pool, generate through
// warmup+measure, drain, check, and report. The returned error covers
// infrastructure failures (bad config, pool dial failure, context
// cancellation); workload failures (SLO misses, spec violations, drain
// timeouts) land in Result.Failures with the partial numbers preserved.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if len(cfg.Addrs) == 0 && cfg.Placement == "" {
		return nil, errors.New("loadgen: no server addresses")
	}
	if cfg.Docs <= 0 {
		return nil, errors.New("loadgen: Docs must be positive")
	}
	if cfg.Rate <= 0 {
		return nil, errors.New("loadgen: Rate must be positive")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("loadgen: Duration must be positive")
	}
	conns := cfg.Conns
	if conns == 0 {
		conns = cfg.Docs
	}
	if conns < cfg.Docs {
		return nil, fmt.Errorf("loadgen: Conns (%d) below Docs (%d): a wire session serves exactly one document", conns, cfg.Docs)
	}

	g := &gen{cfg: cfg, conns: conns}
	if err := g.setup(); err != nil {
		return nil, err
	}
	defer g.closePool()
	return g.run(ctx)
}

// gen is one run's state.
type gen struct {
	cfg   Config
	conns int

	pool     []*poolConn
	docConns [][]int // doc index → pool indices
	sessions []*session
	sampled  map[int]*cappedRecorder // doc index → recorder
	docOps   []atomic.Int64          // successful generates per doc (all phases)
	st       stats
}

func (g *gen) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

// setup assigns sessions to documents (zipfian) and roles, picks the spec
// sample, and dials the connection pool.
func (g *gen) setup() error {
	cfg := &g.cfg
	rng := rand.New(rand.NewSource(cfg.seed()))

	// Sessions: document via zipf over popularity ranks (doc 0 hottest).
	var zipf *rand.Zipf
	if cfg.Docs > 1 && cfg.zipfS() > 1 {
		zipf = rand.NewZipf(rng, cfg.zipfS(), 1, uint64(cfg.Docs-1))
	}
	nSess := cfg.sessions()
	sessDoc := make([]int, nSess)
	sessWriter := make([]bool, nSess)
	perDoc := make([]int, cfg.Docs)
	writersPerDoc := make([]int, cfg.Docs)
	for i := 0; i < nSess; i++ {
		di := 0
		if zipf != nil {
			di = int(zipf.Uint64())
		} else if cfg.Docs > 1 {
			di = rng.Intn(cfg.Docs)
		}
		sessDoc[i] = di
		sessWriter[i] = rng.Float64() < cfg.writerFrac()
		perDoc[di]++
		if sessWriter[i] {
			writersPerDoc[di]++
		}
	}

	// Spec sample: the coolest documents that still see writes, so the
	// recorded histories stay within the event cap. (Docs with writers,
	// fewest sessions first; fall back to any doc with sessions.)
	g.sampled = make(map[int]*cappedRecorder)
	if n := cfg.specSample(); n > 0 {
		order := make([]int, 0, cfg.Docs)
		for di := 0; di < cfg.Docs; di++ {
			if perDoc[di] > 0 {
				order = append(order, di)
			}
		}
		sort.Slice(order, func(a, b int) bool {
			da, db := order[a], order[b]
			wa, wb := writersPerDoc[da] > 0, writersPerDoc[db] > 0
			if wa != wb {
				return wa // writer docs first
			}
			if perDoc[da] != perDoc[db] {
				return perDoc[da] < perDoc[db]
			}
			return da > db
		})
		if len(order) > n {
			order = order[:n]
		}
		for _, di := range order {
			g.sampled[di] = newCappedRecorder(cfg.specMaxEvents())
		}
	}

	// Pool: one connection per document, extras round-robined onto the
	// hottest documents (low indices).
	g.docConns = make([][]int, cfg.Docs)
	g.docOps = make([]atomic.Int64, cfg.Docs)
	type dial struct{ doc int }
	dials := make([]dial, 0, g.conns)
	for di := 0; di < cfg.Docs; di++ {
		dials = append(dials, dial{di})
	}
	for i := 0; len(dials) < g.conns; i++ {
		dials = append(dials, dial{i % cfg.Docs})
	}

	g.pool = make([]*poolConn, len(dials))
	var pcache *placement.Cache
	if cfg.Placement != "" {
		pcache = placement.NewCache(cfg.Placement)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(dials))
	for i, d := range dials {
		pc := &poolConn{
			doc:     d.doc,
			pending: make(map[opid.OpID]pendEntry),
			early:   make(map[opid.OpID]time.Time),
		}
		g.pool[i] = pc
		g.docConns[d.doc] = append(g.docConns[d.doc], i)
		wg.Add(1)
		go func(pc *poolConn) {
			defer wg.Done()
			ccfg := client.Config{
				Addrs:          cfg.Addrs,
				PlacementCache: pcache,
				Doc:            fmt.Sprintf("%s%03d", cfg.docPrefix(), pc.doc),
				Seed:           cfg.seed()*10000 + int64(pc.doc) + 1,
				MinBackoff:     10 * time.Millisecond,
				MaxBackoff:     500 * time.Millisecond,
				Codec:          cfg.Codec,
				Window:         cfg.Window,
				BatchOps:       cfg.BatchOps,
				OnAck:          func(id opid.OpID, _ uint64) { pc.onAck(&g.st, id) },
				Logf:           cfg.Logf,
			}
			if rec, ok := g.sampled[pc.doc]; ok {
				ccfg.Recorder = rec
			}
			cl, err := dialRetry(ccfg)
			if err != nil {
				errCh <- fmt.Errorf("loadgen: dial doc %d: %w", pc.doc, err)
				return
			}
			pc.cl = cl
		}(pc)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return err
	}

	// Sessions bind to their document's connections round-robin.
	next := make([]int, cfg.Docs)
	g.sessions = make([]*session, nSess)
	for i := 0; i < nSess; i++ {
		di := sessDoc[i]
		ci := g.docConns[di][next[di]%len(g.docConns[di])]
		next[di]++
		g.sessions[i] = &session{
			pc:     g.pool[ci],
			writer: sessWriter[i],
			val:    rune('a' + i%26),
		}
	}
	g.logf("loadgen: pool ready: %d conns, %d docs, %d sessions (%d sampled docs)",
		len(g.pool), cfg.Docs, nSess, len(g.sampled))
	return nil
}

// dialRetry dials with a few retries: against a chaos proxy (or a cluster
// mid-failover) the first handshakes can legitimately fail.
func dialRetry(cfg client.Config) (*client.Client, error) {
	var lastErr error
	for attempt := 0; attempt < 40; attempt++ {
		cl, err := client.Dial(cfg)
		if err == nil {
			return cl, nil
		}
		lastErr = err
		time.Sleep(25 * time.Millisecond)
	}
	return nil, lastErr
}

func (g *gen) closePool() {
	var wg sync.WaitGroup
	for _, pc := range g.pool {
		if pc == nil || pc.cl == nil {
			continue
		}
		wg.Add(1)
		go func(pc *poolConn) {
			defer wg.Done()
			_ = pc.cl.Close()
		}(pc)
	}
	wg.Wait()
}

// run drives the phases and assembles the result.
func (g *gen) run(ctx context.Context) (*Result, error) {
	cfg := &g.cfg
	start := time.Now()
	warmupEnd := start.Add(cfg.Warmup)
	measureEnd := warmupEnd.Add(cfg.Duration)

	genCtx, cancelGen := context.WithCancel(ctx)
	defer cancelGen()

	// Progress ticker (also feeds OnProgress).
	phase := func() string {
		now := time.Now()
		switch {
		case now.Before(warmupEnd):
			return "warmup"
		case now.Before(measureEnd):
			return "measure"
		default:
			return "drain"
		}
	}
	tickDone := make(chan struct{})
	tickStop := make(chan struct{})
	go func() {
		defer close(tickDone)
		t := time.NewTicker(cfg.progressEvery())
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p := g.progress(start, phase())
				if cfg.Progress != nil {
					fmt.Fprintln(cfg.Progress, p.String())
				}
				if cfg.OnProgress != nil {
					cfg.OnProgress(p)
				}
			case <-tickStop:
				return
			}
		}
	}()
	defer func() { close(tickStop); <-tickDone }()

	// Generator workers: independent Poisson processes summing to Rate.
	nW := cfg.workers()
	byWorker := make([][]*session, nW)
	for i, s := range g.sessions {
		byWorker[i%nW] = append(byWorker[i%nW], s)
	}
	var wg sync.WaitGroup
	for w := 0; w < nW; w++ {
		if len(byWorker[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, sess []*session) {
			defer wg.Done()
			g.worker(genCtx, w, sess, float64(nW), warmupEnd, measureEnd)
		}(w, byWorker[w])
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: canceled during generation: %w", err)
	}

	// Drain: quiesce, converge, check.
	drainStart := time.Now()
	res := g.baseResult()
	res.WarmupMs = float64(cfg.Warmup) / float64(time.Millisecond)
	res.MeasureMs = float64(drainStart.Sub(warmupEnd)) / float64(time.Millisecond)
	g.drain(ctx, res)
	res.DrainMs = float64(time.Since(drainStart)) / float64(time.Millisecond)

	// Final numbers (acks that landed during drain count).
	g.fillStats(res)
	if sec := res.MeasureMs / 1000; sec > 0 {
		// Completed operations per second: reads complete at their reply,
		// writes at their server ack. Counting only writes would cap a
		// perfectly healthy run at WriterFrac × target.
		res.AchievedRate = float64(res.Ops.Acked+res.Ops.Reads) / sec
	}
	if cfg.MetricsAddr != "" {
		hists, err := scrapeServerHists(cfg.MetricsAddr, "apply_latency", "apply_queue_wait")
		if err != nil {
			g.logf("loadgen: metrics scrape: %v", err)
		} else {
			res.Server = hists
		}
	}
	res.evaluateSLO(cfg.SLO)
	return res, ctx.Err()
}

// worker runs one Poisson arrival process over its sessions.
func (g *gen) worker(ctx context.Context, w int, sess []*session, nW float64, warmupEnd, measureEnd time.Time) {
	cfg := &g.cfg
	rng := rand.New(rand.NewSource(cfg.seed()*7919 + int64(w)))
	mean := float64(time.Second) * nW / cfg.Rate
	threshold := cfg.debtThreshold()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	next := time.Now()
	for {
		next = next.Add(time.Duration(rng.ExpFloat64() * mean))
		if next.After(measureEnd) {
			return
		}
		now := time.Now()
		if d := next.Sub(now); d > 0 {
			timer.Reset(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return
			}
		}
		measure := !next.Before(warmupEnd)
		if measure {
			g.st.intended.Add(1)
			if late := time.Since(next); late > 0 {
				g.st.noteDebt(late, threshold)
			}
		}
		g.fire(sess[rng.Intn(len(sess))], next, measure, rng)
	}
}

// fire issues one session's op at its intended arrival time.
func (g *gen) fire(s *session, intended time.Time, measure bool, rng *rand.Rand) {
	pc := s.pc
	if !s.writer {
		_ = pc.cl.DocLen()
		if measure {
			g.st.reads.Add(1)
		}
		return
	}
	sent := time.Now()
	dl := pc.cl.DocLen()
	var id opid.OpID
	var err error
	if dl > 8 && rng.Intn(4) == 0 {
		// Delete from the front half: concurrent sessions shrink the doc
		// under us, so leave margin before the position is validated.
		id, err = pc.cl.DeleteID(rng.Intn(dl / 2))
	} else {
		id, err = pc.cl.InsertID(s.val, rng.Intn(dl+1))
	}
	if err != nil {
		// A position race under concurrent edits is part of the workload,
		// not an error budget hit; retry once as a prepend, which can only
		// fail for terminal reasons.
		id, err = pc.cl.InsertID(s.val, 0)
	}
	if err != nil {
		if measure {
			g.st.errors.Add(1)
		}
		return
	}
	if measure {
		g.st.writes.Add(1)
	} else {
		g.st.warmup.Add(1)
	}
	g.docOps[pc.doc].Add(1)
	pc.track(&g.st, id, intended, sent, measure)
}

// drain quiesces the system and runs the runtime checks, folding problems
// into res.Failures.
func (g *gen) drain(ctx context.Context, res *Result) {
	cfg := &g.cfg
	dctx, cancel := context.WithTimeout(ctx, cfg.drain())
	defer cancel()

	fail := func(format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}

	// Write barrier: every generated op acknowledged, on every connection.
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i, pc := range g.pool {
		wg.Add(1)
		go func(i int, pc *poolConn) {
			defer wg.Done()
			if err := pc.cl.Sync(dctx); err != nil {
				mu.Lock()
				fail("drain: conn %d (doc %d) sync: %v", i, pc.doc, err)
				mu.Unlock()
			}
		}(i, pc)
	}
	wg.Wait()

	// Read barrier: every connection of a document applies its full
	// serialization (docOps counts every successful generate on that doc).
	for di, idxs := range g.docConns {
		want := uint64(g.docOps[di].Load())
		if want == 0 {
			continue
		}
		for _, i := range idxs {
			pc := g.pool[i]
			wg.Add(1)
			go func(i int, pc *poolConn, want uint64) {
				defer wg.Done()
				if err := pc.cl.WaitServerSeq(dctx, want); err != nil {
					mu.Lock()
					fail("drain: conn %d (doc %d) wait seq %d (at %d): %v", i, pc.doc, want, pc.cl.ServerSeq(), err)
					mu.Unlock()
				}
			}(i, pc, want)
		}
	}
	wg.Wait()
	if len(res.Failures) > 0 {
		// Barriers failed; convergence and spec results would be noise.
		return
	}

	// Convergence: every connection of a document holds the same text.
	for di, idxs := range g.docConns {
		if len(idxs) < 2 {
			continue
		}
		want := g.pool[idxs[0]].cl.Text()
		for _, i := range idxs[1:] {
			if got := g.pool[i].cl.Text(); got != want {
				fail("drain: doc %d diverged between conns %d and %d (%d vs %d chars)",
					di, idxs[0], i, len(want), len(got))
			}
		}
	}

	// Sampled weak-spec runtime check: final reads, then the checkers.
	for di, rec := range g.sampled {
		for _, i := range g.docConns[di] {
			g.pool[i].cl.Read()
		}
		res.Spec.DocsSampled++
		doc := fmt.Sprintf("%s%03d", cfg.docPrefix(), di)
		if rec.overflowed() {
			res.Spec.Overflowed = append(res.Spec.Overflowed, doc)
			g.logf("loadgen: spec: doc %s overflowed %d events, check skipped", doc, cfg.specMaxEvents())
			continue
		}
		h := rec.history()
		res.Spec.DocsChecked++
		res.Spec.Events += h.Len()
		for _, v := range CheckHistory(doc, h) {
			res.Spec.Violations = append(res.Spec.Violations, v)
			fail("spec: %s", v)
		}
	}
	sort.Strings(res.Spec.Overflowed)
}

func (g *gen) baseResult() *Result {
	cfg := &g.cfg
	return &Result{
		Rate:     cfg.Rate,
		Docs:     cfg.Docs,
		Sessions: cfg.sessions(),
		Conns:    g.conns,
		Writers:  cfg.writerFrac(),
		ZipfS:    cfg.zipfS(),
		Seed:     cfg.seed(),
	}
}

// fillStats folds the counters and per-conn histograms into the result.
func (g *gen) fillStats(res *Result) {
	res.Ops = OpStats{
		Intended: g.st.intended.Load(),
		Writes:   g.st.writes.Load(),
		Reads:    g.st.reads.Load(),
		Acked:    g.st.acked.Load(),
		Errors:   g.st.errors.Load(),
		Warmup:   g.st.warmup.Load(),
	}
	res.CO = COStats{
		ThresholdMs: float64(g.cfg.debtThreshold()) / float64(time.Millisecond),
		DelayedOps:  g.st.delayed.Load(),
		MaxDebtMs:   float64(g.st.maxDebt.Load()) / float64(time.Millisecond),
		TotalDebtMs: float64(g.st.debtNs.Load()) / float64(time.Millisecond),
	}
	var e2e, ack metrics.Histogram
	for _, pc := range g.pool {
		e2e.Merge(&pc.e2e)
		ack.Merge(&pc.ack)
	}
	res.LatencyE2E = e2e.Snapshot()
	res.LatencyAck = ack.Snapshot()
}

// progress builds one live snapshot.
func (g *gen) progress(start time.Time, phase string) Progress {
	var e2e metrics.Histogram
	for _, pc := range g.pool {
		e2e.Merge(&pc.e2e)
	}
	return Progress{
		Elapsed:  time.Since(start),
		Phase:    phase,
		Intended: g.st.intended.Load(),
		Writes:   g.st.writes.Load(),
		Acked:    g.st.acked.Load(),
		Reads:    g.st.reads.Load(),
		Errors:   g.st.errors.Load(),
		Delayed:  g.st.delayed.Load(),
		E2E:      e2e.Snapshot(),
	}
}
