// Package client is the network counterpart of internal/server: a
// css.Client replica speaking the internal/wire protocol over TCP, with
// automatic reconnection.
//
// Lifecycle. Dial connects, performs the Hello/Welcome handshake (rooting
// the replica at the server's join snapshot), and starts a manager goroutine
// that owns the connection: it reads server frames, applies them to the
// replica, and — whenever the connection drops — redials with exponential
// backoff plus jitter and resumes the session (presenting the last processed
// frame sequence so the server replays only the missed suffix).
//
// Edits while disconnected are fine: operations are generated locally
// (optimistic local-first execution, exactly the paper's client behavior)
// and buffered; every operation stays in the resend buffer until the server
// acknowledges it with the protocol-level MsgAck, and the whole buffer is
// replayed after each reconnect. The server deduplicates by per-client
// operation sequence, so replaying is always safe.
//
// With a replicated cluster (Config.Addrs), the redial loop doubles as
// failover: each failed attempt rotates to the next candidate address, a
// not-leader rejection jumps straight to the hinted leader, and the resume
// handshake works against whichever node leads now because the replication
// layer keeps every node's per-client frame state identical (see
// internal/server).
//
// Sync() is the write barrier: it blocks until every locally generated
// operation has been serialized and acknowledged. WaitServerSeq(n) is the
// read barrier: it blocks until the replica has processed every serialized
// operation up to global sequence n. Together they give tests and tools a
// convergence point without polling.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"jupiter/internal/core"
	"jupiter/internal/css"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/placement"
	"jupiter/internal/wire"
)

// Config configures a Client.
type Config struct {
	// Addr is the server's TCP address.
	Addr string
	// Addrs, when non-empty, supersedes Addr: the candidate server addresses
	// of a replicated cluster. The client sticks with the address that last
	// worked, rotates to the next on any failed attempt, and jumps straight
	// to the leader a not-leader rejection hints at. Failover is therefore
	// just the ordinary redial loop landing on a different node and resuming
	// there.
	Addrs []string
	// Placement, when non-empty, supersedes Addr/Addrs: the placement
	// service's address. The client fetches the routing table from it and
	// dials the shard owning Doc, re-routing on Moved hints (the document
	// migrated) and wrong-shard rejections (the cached table went stale).
	Placement string
	// PlacementCache, when non-nil, supersedes Placement: a shared routing
	// cache, so the many clients of one process fetch the table once.
	PlacementCache *placement.Cache
	// Doc is the document to join.
	Doc string
	// MaxFrame caps wire frames (0 = wire.DefaultMaxFrame).
	MaxFrame int
	// Codec caps what the client offers in its Hello: "json" pins the
	// session to the JSON codec; "" offers binary first with JSON fallback.
	// The server picks; both sides then speak the selection.
	Codec string
	// NoBatch makes the client speak protocol v1 exactly: no codec offer,
	// no op batches, one frame per operation. Interop tests use it; there is
	// no reason to set it otherwise.
	NoBatch bool
	// Window bounds operations in flight (sent but not yet acknowledged) on
	// one connection; further ops wait in the resend buffer until acks make
	// room. Bounding the window bounds the server's transformation-ladder
	// depth under load (E12). 0 = 64; negative = unbounded (v1 behavior).
	Window int
	// BatchOps bounds operations coalesced into one opb frame (0 = 16;
	// values below 2 or NoBatch disable coalescing).
	BatchOps int
	// DialTimeout bounds one dial attempt (0 = 5s).
	DialTimeout time.Duration
	// MinBackoff/MaxBackoff bound the reconnect backoff (0 = 25ms / 2s).
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Seed seeds the backoff jitter (0 = 1).
	Seed int64
	// Sleep, when non-nil, replaces the real sleep between redial attempts
	// (deterministic reconnect tests observe the requested delays instead
	// of waiting them out).
	Sleep func(time.Duration)
	// Recorder, when non-nil, records the replica's do events (shared,
	// thread-safe recorder in tests).
	Recorder core.Recorder
	// OnServerFrame, when non-nil, observes every server frame just after it
	// was applied to the replica, in application order (failover suites
	// record each client's observation sequence with it). Called with the
	// client's lock held: keep it cheap and never call back into the client.
	OnServerFrame func(s *wire.Server)
	// OnAck, when non-nil, observes the protocol-level acknowledgement of
	// each locally generated operation: the op's identity and the global
	// sequence it was serialized at. This is the load generator's latency
	// hook — cheaper than filtering OnServerFrame, and scoped to own ops
	// only. Called with the client's lock held: keep it cheap and never call
	// back into the client.
	OnAck func(id opid.OpID, seq uint64)
	// Logf, when non-nil, receives one line per connection event.
	Logf func(format string, args ...any)
}

func (c *Config) addrs() []string {
	if len(c.Addrs) > 0 {
		return c.Addrs
	}
	return []string{c.Addr}
}

func (c *Config) window() int {
	if c.Window < 0 {
		return int(^uint(0) >> 1) // unbounded
	}
	if c.Window == 0 {
		return 64
	}
	return c.Window
}

func (c *Config) batchOps() int {
	if c.NoBatch || c.BatchOps < 0 {
		return 1
	}
	if c.BatchOps == 0 {
		return 16
	}
	return c.BatchOps
}

func (c *Config) dialTimeout() time.Duration {
	if c.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return c.DialTimeout
}

func (c *Config) minBackoff() time.Duration {
	if c.MinBackoff <= 0 {
		return 25 * time.Millisecond
	}
	return c.MinBackoff
}

func (c *Config) maxBackoff() time.Duration {
	if c.MaxBackoff <= 0 {
		return 2 * time.Second
	}
	return c.MaxBackoff
}

// Client is a connected (or reconnecting) replica of one document.
type Client struct {
	cfg   Config
	place *placement.Cache // nil without placement routing

	mu   sync.Mutex
	cond *sync.Cond // signaled on any state change under mu

	replica      *css.Client     // the protocol replica; nil never after Dial
	id           opid.ClientID   // assigned by the server at first join
	addrIdx      int             // index into the current dial list
	movedAddrs   []string        // Moved-hint addresses superseding cfg's list (no placement cache)
	resend       []css.ClientMsg // generated, not yet protocol-acked, in order
	sentN        int             // prefix of resend shipped on this connection
	srvV2        bool            // server negotiated (understands opb frames)
	lastFrameSeq uint64          // last server frame applied (resume point)
	serverSeq    uint64          // highest global op sequence processed
	connGen      int             // bumped on every successful handshake
	connected    bool
	closed       bool
	termErr      error // terminal failure (bad resume etc.)

	// Connection plumbing; writeMu serializes frame writes between the
	// manager (acks, replays) and generators (ops). Lock order: mu, then
	// writeMu.
	writeMu sync.Mutex
	nc      net.Conn
	codec   *wire.Stream

	backoff Backoff // redial schedule; guarded by the manager goroutine only

	wg sync.WaitGroup
}

// Errors.
var (
	ErrClosed = errors.New("client: closed")
)

// Dial connects, joins the document as a new client, and starts the
// reconnect manager. It returns once the replica is rooted and usable.
func Dial(cfg Config) (*Client, error) {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Client{cfg: cfg, backoff: Backoff{
		Min:  cfg.minBackoff(),
		Max:  cfg.maxBackoff(),
		Rand: rand.New(rand.NewSource(seed)),
	}}
	c.place = cfg.PlacementCache
	if c.place == nil && cfg.Placement != "" {
		c.place = placement.NewCache(cfg.Placement)
	}
	c.cond = sync.NewCond(&c.mu)
	// One pass over the address list: with a replicated cluster the first
	// configured address may be a follower (or down), and the join should
	// land on whichever node is leading right now. With placement routing,
	// a couple of attempts absorb a Moved hint from a just-migrated doc.
	attempts := len(cfg.addrs())
	if c.place != nil && attempts < 3 {
		attempts = 3
	}
	var err error
	for i := 0; i < attempts; i++ {
		if err = c.connect(); err == nil {
			break
		}
		c.mu.Lock()
		terminal := c.termErr != nil
		c.mu.Unlock()
		if terminal {
			break
		}
	}
	if err != nil {
		return nil, err
	}
	c.wg.Add(1)
	go c.manage()
	return c, nil
}

// ID returns the server-assigned client identifier.
func (c *Client) ID() opid.ClientID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.id
}

// logf logs via the configured logger.
func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// dialList returns the static dial candidates: the addresses adopted from a
// Moved hint when the document migrated away (there is no placement cache to
// resolve shard ids, so the hint IS the routing information), else the
// configured list. Caller holds c.mu.
func (c *Client) dialList() []string {
	if len(c.movedAddrs) > 0 {
		return c.movedAddrs
	}
	return c.cfg.addrs()
}

// target returns the address the next attempt should dial and the shard id
// to present in the Hello. With placement routing the shard comes from the
// routing cache (fetch-on-miss, local Moved overrides first); otherwise it
// is the current dial list and no shard id.
func (c *Client) target() (addr, shard string, err error) {
	if c.place != nil {
		sh, err := c.place.Lookup(c.cfg.Doc)
		if err != nil {
			return "", "", err
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		return sh.Addrs[c.addrIdx%len(sh.Addrs)], sh.ID, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	addrs := c.dialList()
	return addrs[c.addrIdx%len(addrs)], "", nil
}

// rotateAddr moves to the next candidate address after a failed attempt; a
// non-empty hint (the leader address from a not-leader rejection) jumps
// straight to that node when it is in the configured list. Successful
// attempts never rotate, so the client sticks with a working server. Under
// placement routing the index rotates within whatever address list the next
// target lookup returns (the modulo is applied at pick time).
func (c *Client) rotateAddr(hint string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.place != nil {
		c.addrIdx++ // reduced modulo the shard's address list at pick time
		return
	}
	addrs := c.dialList()
	if hint != "" {
		for i, a := range addrs {
			if a == hint {
				c.addrIdx = i
				return
			}
		}
	}
	c.addrIdx = (c.addrIdx + 1) % len(addrs)
}

// applyMovedHint adopts a Moved frame: through the placement cache when one
// is configured, else by taking the hint's addresses as the new dial list.
// Without a cache AND without addresses the hint is unactionable — redialing
// the retired shard would loop on the same hint forever, so that case is a
// terminal failure instead.
func (c *Client) applyMovedHint(mv wire.Moved) error {
	if c.place != nil {
		c.place.ApplyMoved(mv)
		c.mu.Lock()
		c.addrIdx = 0 // the hint's address list starts fresh
		c.mu.Unlock()
		return nil
	}
	if len(mv.Addrs) == 0 {
		err := fmt.Errorf("client: document %q moved to shard %s, which the hint names no addresses for and no placement service is configured to resolve", mv.Doc, mv.Shard)
		c.fail(err)
		return err
	}
	c.mu.Lock()
	c.movedAddrs = append([]string(nil), mv.Addrs...)
	c.addrIdx = 0
	c.mu.Unlock()
	return nil
}

// connect dials and performs one handshake (new join or resume). On success
// the connection is installed and buffered operations are replayed; on
// failure the target rotates to the next candidate address.
func (c *Client) connect() error {
	addr, shard, err := c.target()
	if err != nil {
		// Placement service unreachable: invalidate so the next attempt
		// refetches, and let the backoff pace the retries.
		c.place.Invalidate()
		return err
	}
	nc, err := net.DialTimeout("tcp", addr, c.cfg.dialTimeout())
	if err != nil {
		c.rotateAddr("")
		return err
	}
	codec := wire.NewStream(nc, c.cfg.MaxFrame)

	c.mu.Lock()
	hello := wire.Hello{Doc: c.cfg.Doc, Shard: shard}
	if !c.cfg.NoBatch {
		hello.Codecs = wire.PreferredCodecs(c.cfg.Codec)
	}
	if c.replica != nil {
		hello.ClientID = int32(c.id)
		hello.LastFrameSeq = c.lastFrameSeq
	}
	c.mu.Unlock()

	_ = nc.SetDeadline(time.Now().Add(c.cfg.dialTimeout()))
	if err := codec.Write(&wire.Frame{Type: wire.THello, Hello: &hello}); err != nil {
		nc.Close()
		c.rotateAddr("")
		return err
	}
	f, err := codec.Read()
	if err != nil {
		nc.Close()
		c.rotateAddr("")
		return err
	}
	_ = nc.SetDeadline(time.Time{})

	switch f.Type {
	case wire.TWelcome:
	case wire.TMoved:
		// The document lives on another shard now; adopt the hint and let
		// the retry dial the new home.
		nc.Close()
		if err := c.applyMovedHint(*f.Moved); err != nil {
			return err
		}
		return fmt.Errorf("client: document moved to shard %s", f.Moved.Shard)
	case wire.TError:
		nc.Close()
		err := fmt.Errorf("client: server rejected session: %s: %s", f.Error.Code, f.Error.Msg)
		switch f.Error.Code {
		case wire.CodeBadResume:
			c.fail(err)
		case wire.CodeNotLeader:
			c.rotateAddr(f.Error.Leader)
		case wire.CodeWrongShard:
			// Our routing table is stale: drop it and refetch next attempt.
			if c.place != nil {
				c.place.Invalidate()
			}
			c.rotateAddr("")
		default:
			c.rotateAddr("")
		}
		return err
	default:
		nc.Close()
		c.rotateAddr("")
		return fmt.Errorf("client: unexpected handshake frame %q", f.Type)
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		nc.Close()
		return ErrClosed
	}
	if c.replica == nil {
		if f.Welcome.Snapshot == nil {
			c.mu.Unlock()
			nc.Close()
			return fmt.Errorf("client: welcome without snapshot for a new session")
		}
		replica, err := css.NewClientFromSnapshot(opid.ClientID(f.Welcome.ClientID), f.Welcome.Snapshot, c.cfg.Recorder)
		if err != nil {
			c.mu.Unlock()
			nc.Close()
			return fmt.Errorf("client: root from snapshot: %w", err)
		}
		c.replica = replica
		c.id = opid.ClientID(f.Welcome.ClientID)
		// Everything in the snapshot is already serialized; reads of it are
		// consistent from global sequence = number of replayed ops.
		c.serverSeq = uint64(len(f.Welcome.Snapshot.FrontierIDs) + len(f.Welcome.Snapshot.Replay))
	} else if !f.Welcome.Resume {
		c.mu.Unlock()
		nc.Close()
		return fmt.Errorf("client: expected resume welcome")
	}
	// Adopt the server's codec selection for our own sends (frames
	// self-identify, so the switch needs no synchronization with reads).
	// Compact contexts ride along with the binary codec: O(1) context
	// instead of one id per concurrent op.
	if cd, ok := wire.Lookup(f.Welcome.Codec); ok {
		codec.Use(cd)
	}
	if f.Welcome.Codec == wire.CodecBinary {
		c.replica.UseCompactContexts()
	}
	c.nc = nc
	c.codec = codec
	c.connected = true
	c.connGen++
	c.sentN = 0
	c.srvV2 = f.Welcome.Codec != ""
	pending := len(c.resend)
	c.cond.Broadcast()
	c.mu.Unlock()

	// Replay unacknowledged operations: pump ships the resend prefix from
	// zero, in order, bounded by the send window; acks drive the rest out.
	c.pump()
	c.logf("client c%d: connected to %s (%d ops pending)", c.ID(), addr, pending)
	return nil
}

// pump ships generated-but-unsent operations, oldest first, while the send
// window has room: up to BatchOps per frame, as one opb batch when the server
// understands them. It is called after anything that creates work (a local
// edit, a reconnect) or room (an ack). Writes happen with writeMu acquired
// under mu, so concurrent pumps leave the wire in generation order.
func (c *Client) pump() {
	for {
		c.mu.Lock()
		if !c.connected || c.closed || c.termErr != nil {
			c.mu.Unlock()
			return
		}
		n := len(c.resend) - c.sentN // available
		if room := c.cfg.window() - c.sentN; n > room {
			n = room
		}
		if bo := c.cfg.batchOps(); n > bo {
			n = bo
		}
		if !c.srvV2 && n > 1 {
			n = 1 // v1 server: one op per frame
		}
		if n <= 0 {
			c.mu.Unlock()
			return
		}
		msgs := append([]css.ClientMsg(nil), c.resend[c.sentN:c.sentN+n]...)
		c.sentN += n
		codec := c.codec
		c.writeMu.Lock()
		c.mu.Unlock()
		var err error
		if len(msgs) == 1 {
			err = codec.Write(&wire.Frame{Type: wire.TOp, Op: &wire.Op{Msg: msgs[0]}})
		} else {
			err = codec.Write(&wire.Frame{Type: wire.TOpBatch, OpBatch: &wire.OpBatch{Msgs: msgs}})
		}
		c.writeMu.Unlock()
		if err != nil {
			var we *wire.WriteError
			if errors.As(err, &we) {
				// Connection died under us; the ops stay in the resend buffer
				// and the manager's reconnect replays them (sentN resets there).
				c.logf("client c%d: send failed (buffered): %v", c.ID(), err)
				return
			}
			// Encode/validation failure: the frame never touched the wire and
			// the connection is still healthy, so waiting for a reconnect to
			// reset sentN would strand these ops forever. Retrying would fail
			// identically — surface it as a terminal error instead.
			c.fail(fmt.Errorf("client c%d: encode failed for %d op(s): %w", c.ID(), len(msgs), err))
			return
		}
	}
}

// manage owns reconnection: read frames until the connection dies, then
// redial with backoff until closed.
func (c *Client) manage() {
	defer c.wg.Done()
	for {
		c.mu.Lock()
		for !c.connected && !c.closed && c.termErr == nil {
			c.mu.Unlock()
			if !c.backoffAndRedial() {
				return
			}
			c.mu.Lock()
		}
		if c.closed || c.termErr != nil {
			c.mu.Unlock()
			return
		}
		codec := c.codec
		nc := c.nc
		gen := c.connGen
		c.mu.Unlock()

		c.readFrames(codec, gen)

		nc.Close()
		c.mu.Lock()
		if c.connGen == gen {
			c.connected = false
			c.cond.Broadcast()
		}
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
	}
}

// backoffAndRedial sleeps the next backoff (with jitter) and tries one
// connect; it reports false when the client is done for good. The schedule
// restarts from Min on entry: a successful reconnect resets the penalty.
func (c *Client) backoffAndRedial() bool {
	c.backoff.Reset()
	for {
		c.sleep(c.backoff.Next())
		c.mu.Lock()
		if c.closed || c.termErr != nil {
			c.mu.Unlock()
			return false
		}
		c.mu.Unlock()
		err := c.connect()
		if err == nil {
			return true
		}
		if errors.Is(err, ErrClosed) {
			return false
		}
		c.mu.Lock()
		terminal := c.termErr != nil
		c.mu.Unlock()
		if terminal {
			return false
		}
		c.logf("client c%d: redial: %v", c.ID(), err)
	}
}

// sleep waits d via the configured hook or the real clock.
func (c *Client) sleep(d time.Duration) {
	if c.cfg.Sleep != nil {
		c.cfg.Sleep(d)
		return
	}
	time.Sleep(d)
}

// readFrames applies server frames until the connection errors. gen guards
// against applying frames from a stale connection after a racing reconnect.
func (c *Client) readFrames(codec *wire.Stream, gen int) {
	for {
		f, err := codec.Read()
		if err != nil {
			return
		}
		switch f.Type {
		case wire.TServer:
			if !c.applyServerFrame(f.Server, gen) {
				return
			}
			// Frame-level ack: lets the server trim its retained outbox.
			c.writeMu.Lock()
			err := codec.Write(&wire.Frame{Type: wire.TAck, Ack: &wire.Ack{Seq: f.Server.Seq}})
			c.writeMu.Unlock()
			if err != nil {
				return
			}
			c.pump() // acks may have opened the send window
		case wire.TServerBatch:
			for i := range f.ServerBatch.Frames {
				if !c.applyServerFrame(&f.ServerBatch.Frames[i], gen) {
					return
				}
			}
			// One cumulative ack for the whole batch: Ack.Seq is a
			// watermark, so acking the last frame acks them all.
			last := f.ServerBatch.Frames[len(f.ServerBatch.Frames)-1].Seq
			c.writeMu.Lock()
			err := codec.Write(&wire.Frame{Type: wire.TAck, Ack: &wire.Ack{Seq: last}})
			c.writeMu.Unlock()
			if err != nil {
				return
			}
			c.pump()
		case wire.TMoved:
			// Mid-session migration: the shard cut us loose with a pointer to
			// the document's new home. Record it and let the manager redial;
			// the resume handshake (and the blind resend of anything
			// unacknowledged) runs against the target shard.
			if c.applyMovedHint(*f.Moved) != nil {
				return // terminal: no route to the document's new home
			}
			c.logf("client c%d: document moved to shard %s", c.ID(), f.Moved.Shard)
			return
		case wire.TError:
			if f.Error.Code == wire.CodeBadResume {
				c.fail(fmt.Errorf("client: server rejected resume: %s", f.Error.Msg))
			}
			c.logf("client c%d: server error: %s: %s", c.ID(), f.Error.Code, f.Error.Msg)
			return
		case wire.TBye:
			return
		default:
			c.logf("client c%d: unexpected frame %q", c.ID(), f.Type)
			return
		}
	}
}

// applyServerFrame integrates one server message into the replica.
func (c *Client) applyServerFrame(s *wire.Server, gen int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.connGen != gen {
		return false
	}
	if s.Seq != c.lastFrameSeq+1 {
		// FIFO violation (or duplicate after a torn resume): drop the
		// connection and resume from the last good frame.
		c.logf("client c%d: frame gap: got %d want %d", c.id, s.Seq, c.lastFrameSeq+1)
		return false
	}
	if err := c.replica.Receive(s.Msg); err != nil {
		c.fail(fmt.Errorf("client: apply frame %d: %w", s.Seq, err))
		return false
	}
	c.lastFrameSeq = s.Seq
	switch s.Msg.Kind {
	case css.MsgAck:
		if len(c.resend) > 0 && c.resend[0].Op.ID == s.Msg.AckID {
			c.resend = c.resend[1:]
			if c.sentN > 0 {
				c.sentN--
			}
		} else {
			// Out-of-order ack would be a protocol bug; scrub defensively.
			kept := c.resend[:0]
			for i, m := range c.resend {
				if m.Op.ID != s.Msg.AckID {
					kept = append(kept, m)
				} else if i < c.sentN {
					c.sentN--
				}
			}
			c.resend = kept
		}
		if s.Msg.Seq > c.serverSeq {
			c.serverSeq = s.Msg.Seq
		}
		if c.cfg.OnAck != nil {
			c.cfg.OnAck(s.Msg.AckID, s.Msg.Seq)
		}
	case css.MsgBroadcast:
		if s.Msg.Seq > c.serverSeq {
			c.serverSeq = s.Msg.Seq
		}
	}
	if c.cfg.OnServerFrame != nil {
		c.cfg.OnServerFrame(s)
	}
	c.cond.Broadcast()
	return true
}

// fail records a terminal error and wakes every waiter.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.termErr == nil {
		c.termErr = err
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// generate runs one local edit and ships (or buffers) the message, returning
// the generated operation's identity so callers can correlate the later
// OnAck callback with this edit.
func (c *Client) generate(gen func(*css.Client) (css.ClientMsg, error)) (opid.OpID, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return opid.OpID{}, ErrClosed
	}
	if c.termErr != nil {
		defer c.mu.Unlock()
		return opid.OpID{}, c.termErr
	}
	msg, err := gen(c.replica)
	if err != nil {
		c.mu.Unlock()
		return opid.OpID{}, err
	}
	c.resend = append(c.resend, msg)
	id := msg.Op.ID
	c.mu.Unlock()
	// Local-first: generation never blocks. pump ships what the send window
	// permits (nothing, when disconnected — the reconnect replays it).
	c.pump()
	return id, nil
}

// Insert generates Ins(val, pos) locally and propagates it.
func (c *Client) Insert(val rune, pos int) error {
	_, err := c.InsertID(val, pos)
	return err
}

// InsertID is Insert returning the generated operation's identity (the load
// generator matches it against OnAck to measure end-to-end ack latency).
func (c *Client) InsertID(val rune, pos int) (opid.OpID, error) {
	return c.generate(func(r *css.Client) (css.ClientMsg, error) { return r.GenerateIns(val, pos) })
}

// Delete generates a delete of the element at pos and propagates it.
func (c *Client) Delete(pos int) error {
	_, err := c.DeleteID(pos)
	return err
}

// DeleteID is Delete returning the generated operation's identity.
func (c *Client) DeleteID(pos int) (opid.OpID, error) {
	return c.generate(func(r *css.Client) (css.ClientMsg, error) { return r.GenerateDel(pos) })
}

// Document returns the replica's current list value.
func (c *Client) Document() []list.Elem {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replica.Document()
}

// DocLen returns the replica's current list length without copying the
// elements — what an open-loop load generator calls once per generated op.
func (c *Client) DocLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replica.DocLen()
}

// Text returns the document rendered as a string.
func (c *Client) Text() string { return list.Render(c.Document()) }

// Read records a do(Read, w) event in the history and returns the list.
func (c *Client) Read() []list.Elem {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replica.Read()
}

// ServerSeq returns the highest global sequence number processed so far.
func (c *Client) ServerSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serverSeq
}

// Pending returns how many local operations await acknowledgement.
func (c *Client) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.resend)
}

// wait blocks until pred (under mu) holds, the context ends, or the client
// terminally fails.
func (c *Client) wait(ctx context.Context, pred func() bool) error {
	done := make(chan struct{})
	defer close(done)
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for !pred() {
		if c.termErr != nil {
			return c.termErr
		}
		if c.closed {
			return ErrClosed
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		c.cond.Wait()
	}
	return nil
}

// Sync blocks until every locally generated operation has been serialized
// and acknowledged by the server (the write barrier).
func (c *Client) Sync(ctx context.Context) error {
	return c.wait(ctx, func() bool { return len(c.resend) == 0 })
}

// WaitServerSeq blocks until the replica has processed every operation up
// to and including global sequence seq (the read barrier).
func (c *Client) WaitServerSeq(ctx context.Context, seq uint64) error {
	return c.wait(ctx, func() bool { return c.serverSeq >= seq })
}

// DropConnection forcibly closes the current TCP connection (a test hook
// simulating a network failure); the manager redials and resumes.
func (c *Client) DropConnection() {
	c.mu.Lock()
	nc := c.nc
	c.mu.Unlock()
	if nc != nil {
		nc.Close()
	}
}

// Close stops the client for good.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.closed = true
	nc := c.nc
	c.cond.Broadcast()
	c.mu.Unlock()
	if nc != nil {
		// Best-effort goodbye, then cut.
		c.writeMu.Lock()
		if c.codec != nil {
			_ = nc.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
			_ = c.codec.Write(&wire.Frame{Type: wire.TBye})
		}
		c.writeMu.Unlock()
		nc.Close()
	}
	c.wg.Wait()
	return nil
}
