package client

import (
	"testing"
	"time"
)

func TestConfigDefaults(t *testing.T) {
	var c Config
	if got := c.dialTimeout(); got != 5*time.Second {
		t.Errorf("dialTimeout = %v", got)
	}
	if got := c.minBackoff(); got != 25*time.Millisecond {
		t.Errorf("minBackoff = %v", got)
	}
	if got := c.maxBackoff(); got != 2*time.Second {
		t.Errorf("maxBackoff = %v", got)
	}
	c = Config{DialTimeout: time.Second, MinBackoff: time.Millisecond, MaxBackoff: time.Minute}
	if c.dialTimeout() != time.Second || c.minBackoff() != time.Millisecond || c.maxBackoff() != time.Minute {
		t.Errorf("explicit config not honored: %+v", c)
	}
}

func TestDialFailsFast(t *testing.T) {
	// Nothing listens on this port; Dial must return an error rather than
	// spinning in the background.
	_, err := Dial(Config{Addr: "127.0.0.1:1", Doc: "d", DialTimeout: 500 * time.Millisecond})
	if err == nil {
		t.Fatal("expected dial error")
	}
}
