package client

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"jupiter/internal/server"
)

// TestBackoffGrowthNoJitter pins the bare schedule: doubling from Min,
// capped at Max, no jitter with a nil Rand.
func TestBackoffGrowthNoJitter(t *testing.T) {
	b := Backoff{Min: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("Next #%d = %v, want %v", i, got, w)
		}
	}
}

// TestBackoffJitterBounds verifies every jittered delay lands in
// [base, 1.5·base] while the base follows the doubling-capped schedule.
func TestBackoffJitterBounds(t *testing.T) {
	min, max := 100*time.Millisecond, time.Second
	b := Backoff{Min: min, Max: max, Rand: rand.New(rand.NewSource(42))}
	base := min
	for i := 0; i < 20; i++ {
		d := b.Next()
		if d < base || d > base+base/2 {
			t.Fatalf("Next #%d = %v outside [%v, %v]", i, d, base, base+base/2)
		}
		base *= 2
		if base > max {
			base = max
		}
	}
}

// TestBackoffDeterministic checks that equal seeds give equal schedules.
func TestBackoffDeterministic(t *testing.T) {
	mk := func() *Backoff {
		return &Backoff{Min: 5 * time.Millisecond, Max: 500 * time.Millisecond,
			Rand: rand.New(rand.NewSource(7))}
	}
	a, b := mk(), mk()
	for i := 0; i < 16; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("draw #%d diverged: %v vs %v", i, da, db)
		}
	}
}

// TestBackoffReset checks Reset returns the schedule to its first step.
func TestBackoffReset(t *testing.T) {
	b := Backoff{Min: 10 * time.Millisecond, Max: time.Second}
	for i := 0; i < 5; i++ {
		b.Next()
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Fatalf("Next after Reset = %v, want %v", got, 10*time.Millisecond)
	}
}

// TestClientBackoffResetAfterSuccess drives a real client through two
// forced disconnects against a live server and, via the Sleep hook,
// observes every redial delay. Each reconnect succeeds immediately, so the
// schedule must restart from Min after each drop: no recorded delay may
// exceed the first step's jitter ceiling (1.5·Min).
func TestClientBackoffResetAfterSuccess(t *testing.T) {
	eng := server.New(server.Config{Addr: "127.0.0.1:0"})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Shutdown(context.Background())

	const min = 10 * time.Millisecond
	var mu sync.Mutex
	var slept []time.Duration
	c, err := Dial(Config{
		Addr:       eng.Addr(),
		Doc:        "backoff",
		Seed:       3,
		MinBackoff: min,
		MaxBackoff: time.Second,
		Sleep: func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for round := 0; round < 2; round++ {
		c.DropConnection()
		// An optimistic edit while the connection is down: acknowledging it
		// requires a successful reconnect, so Sync waits out the redial.
		if err := c.Insert('x', round); err != nil {
			t.Fatalf("round %d: insert: %v", round, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := c.Sync(ctx); err != nil {
			cancel()
			t.Fatalf("round %d: resync after drop: %v", round, err)
		}
		cancel()
	}

	mu.Lock()
	defer mu.Unlock()
	if len(slept) < 2 {
		t.Fatalf("recorded %d redial sleeps, want at least 2 (one per drop)", len(slept))
	}
	for i, d := range slept {
		if d < min || d > min+min/2 {
			t.Fatalf("sleep #%d = %v outside [%v, %v]: schedule did not restart from Min",
				i, d, min, min+min/2)
		}
	}
}
