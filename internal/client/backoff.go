package client

import (
	"math/rand"
	"time"
)

// Backoff computes exponential reconnect delays with jitter. Next returns
// the current base delay plus a jitter drawn uniformly from [0, base/2],
// then doubles the base, capping it at Max. Reset returns the base to Min —
// the client resets after every successful reconnect, so an outage is paid
// for only while it lasts.
//
// The jitter source is injected rather than global so tests can fix the
// draw sequence; a nil Rand disables jitter entirely, making the schedule
// exactly Min, 2·Min, 4·Min, …, Max. Not safe for concurrent use: the
// client's manager goroutine is the only caller.
type Backoff struct {
	Min  time.Duration
	Max  time.Duration
	Rand *rand.Rand

	cur time.Duration
}

// Next returns the delay to sleep before the upcoming attempt and advances
// the schedule.
func (b *Backoff) Next() time.Duration {
	if b.cur <= 0 {
		b.cur = b.Min
	}
	d := b.cur
	if b.Rand != nil && b.cur > 0 {
		d += time.Duration(b.Rand.Int63n(int64(b.cur)/2 + 1))
	}
	b.cur *= 2
	if b.cur > b.Max {
		b.cur = b.Max
	}
	return d
}

// Reset returns the schedule to its starting delay.
func (b *Backoff) Reset() { b.cur = 0 }
