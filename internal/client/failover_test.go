package client

import (
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"jupiter/internal/server"
)

// TestAddrRotation pins the address-selection state machine: round-robin on
// failure, leader-hint jumps, and fallback to Addr when Addrs is empty.
func TestAddrRotation(t *testing.T) {
	c := &Client{cfg: Config{Addrs: []string{"a:1", "b:2", "c:3"}}}
	if got, _, _ := c.target(); got != "a:1" {
		t.Fatalf("initial addr = %q, want a:1", got)
	}
	c.rotateAddr("")
	if got, _, _ := c.target(); got != "b:2" {
		t.Fatalf("after one rotation addr = %q, want b:2", got)
	}
	// A not-leader hint naming a configured address jumps straight to it.
	c.rotateAddr("c:3")
	if got, _, _ := c.target(); got != "c:3" {
		t.Fatalf("after hint addr = %q, want c:3", got)
	}
	// An unknown hint degrades to plain rotation (and wraps).
	c.rotateAddr("unknown:9")
	if got, _, _ := c.target(); got != "a:1" {
		t.Fatalf("after unknown hint addr = %q, want a:1", got)
	}

	single := &Client{cfg: Config{Addr: "only:1"}}
	if got, _, _ := single.target(); got != "only:1" {
		t.Fatalf("single-addr fallback = %q, want only:1", got)
	}
	single.rotateAddr("")
	if got, _, _ := single.target(); got != "only:1" {
		t.Fatalf("single-addr after rotation = %q, want only:1", got)
	}
}

// TestDialRotationOrder proves Dial walks the configured addresses in order:
// two listeners that accept and immediately hang up record who was tried
// first.
func TestDialRotationOrder(t *testing.T) {
	accepts := make(chan string, 8)
	mk := func(name string) net.Listener {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				accepts <- name
				conn.Close()
			}
		}()
		return ln
	}
	lnA := mk("a")
	defer lnA.Close()
	lnB := mk("b")
	defer lnB.Close()

	_, err := Dial(Config{
		Addrs:       []string{lnA.Addr().String(), lnB.Addr().String()},
		Doc:         "d",
		DialTimeout: 2 * time.Second,
	})
	if err == nil {
		t.Fatal("expected handshake failure against hang-up listeners")
	}
	for i, want := range []string{"a", "b"} {
		select {
		case got := <-accepts:
			if got != want {
				t.Fatalf("attempt %d hit %q, want %q", i, got, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("attempt %d never arrived", i)
		}
	}
}

// flakyProxy forwards TCP to a backend; while disabled it accepts and
// immediately hangs up, making every handshake fail deterministically.
type flakyProxy struct {
	ln      net.Listener
	backend string

	mu        sync.Mutex
	accepting bool
	conns     []net.Conn
}

func newFlakyProxy(t *testing.T, backend string) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln, backend: backend, accepting: true}
	go p.loop()
	return p
}

func (p *flakyProxy) loop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		ok := p.accepting
		if ok {
			p.conns = append(p.conns, conn)
		}
		p.mu.Unlock()
		if !ok {
			conn.Close()
			continue
		}
		go p.pipe(conn)
	}
}

func (p *flakyProxy) pipe(conn net.Conn) {
	up, err := net.Dial("tcp", p.backend)
	if err != nil {
		conn.Close()
		return
	}
	p.mu.Lock()
	p.conns = append(p.conns, up)
	p.mu.Unlock()
	go func() {
		_, _ = io.Copy(up, conn)
		up.Close()
		conn.Close()
	}()
	_, _ = io.Copy(conn, up)
	up.Close()
	conn.Close()
}

func (p *flakyProxy) setAccepting(ok bool) {
	p.mu.Lock()
	p.accepting = ok
	if !ok {
		for _, c := range p.conns {
			c.Close()
		}
		p.conns = nil
	}
	p.mu.Unlock()
}

func (p *flakyProxy) close() { p.ln.Close(); p.setAccepting(false) }

// TestBackoffResetsAfterSuccessfulReconnect drives the client through an
// outage (escalating delays), a successful reconnect, and a second outage,
// asserting the second outage restarts the schedule from Min. Delays are
// observed via the Sleep hook, so no real time is spent backing off, and the
// jitter bound (at most base/2) makes consecutive delays provably increasing:
// delay k lies in [Min·2^k, 1.5·Min·2^k], and those intervals are disjoint.
func TestBackoffResetsAfterSuccessfulReconnect(t *testing.T) {
	eng := server.New(server.Config{Addr: "127.0.0.1:0"})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	}()

	proxy := newFlakyProxy(t, eng.Addr())
	defer proxy.close()

	var delayMu sync.Mutex
	var delays []time.Duration
	record := func(d time.Duration) {
		delayMu.Lock()
		delays = append(delays, d)
		delayMu.Unlock()
	}
	countDelays := func() int {
		delayMu.Lock()
		defer delayMu.Unlock()
		return len(delays)
	}

	const minBackoff = 4 * time.Millisecond
	c, err := Dial(Config{
		Addrs:      []string{proxy.ln.Addr().String()},
		Doc:        "d",
		MinBackoff: minBackoff,
		MaxBackoff: time.Second,
		Seed:       7,
		Sleep:      record,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Outage one: the proxy hangs up every attempt; wait for four escalating
	// delays.
	proxy.setAccepting(false)
	deadline := time.Now().Add(5 * time.Second)
	for countDelays() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d redial delays recorded", countDelays())
		}
		time.Sleep(time.Millisecond)
	}
	delayMu.Lock()
	firstRound := append([]time.Duration(nil), delays[:4]...)
	delayMu.Unlock()
	for i := 1; i < len(firstRound); i++ {
		if firstRound[i] <= firstRound[i-1] {
			t.Fatalf("outage delays not escalating: %v", firstRound)
		}
	}
	if firstRound[0] > minBackoff*3/2 {
		t.Fatalf("first delay %v exceeds Min+jitter bound %v", firstRound[0], minBackoff*3/2)
	}

	// Recovery: reconnect, and prove the session works end to end.
	proxy.setAccepting(true)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Insert('x', 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(ctx); err != nil {
		t.Fatalf("sync after recovery: %v", err)
	}

	// Outage two: the very first delay must be back at the Min tier, strictly
	// below the second delay of the previous round — the reset happened.
	before := countDelays()
	proxy.setAccepting(false) // also severs the live connection
	c.DropConnection()
	deadline = time.Now().Add(5 * time.Second)
	for countDelays() < before+1 {
		if time.Now().After(deadline) {
			t.Fatal("no redial after second outage")
		}
		time.Sleep(time.Millisecond)
	}
	delayMu.Lock()
	secondFirst := delays[before]
	delayMu.Unlock()
	if secondFirst > minBackoff*3/2 {
		t.Fatalf("backoff did not reset: first delay of second outage = %v", secondFirst)
	}
	if secondFirst >= firstRound[1] {
		t.Fatalf("second-outage delay %v not below escalated %v", secondFirst, firstRound[1])
	}
	proxy.setAccepting(true)
}
