// Package core provides the formal framework of Sections 2 and 4 of the
// paper in executable form: do events, histories, abstract executions with
// visibility, and the causal / concurrent / totally-before relations on user
// operations.
//
// The protocols (internal/css, internal/cscw, internal/rga, internal/broken)
// record a History as they run; the specification checkers (internal/spec)
// consume it. The visibility relation of the constructed abstract execution
// is the causal relation, vis = →, exactly as the proof of Theorem 8.2
// chooses it.
package core

import (
	"fmt"
	"strings"
	"sync"

	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// Event is a do event (Definition 2.1's do(op, v)): a user invoked op at
// Replica and immediately received the list Returned. Read events use an op
// of kind ot.KindRead.
//
// Visible is the set of original update operations (Ins/Del) causally before
// this event — vis⁻¹(e) restricted to updates, which is all three
// specifications ever inspect. It never contains the event's own operation;
// the checkers use the reflexive closure ≤vis where the specifications do.
type Event struct {
	Replica  string      // replica name, e.g. "c1" or "server"
	Op       ot.Op       // the ORIGINAL user operation (org form)
	Returned []list.Elem // the list returned to the user
	Visible  opid.Set    // update operations visible (causally before) this event
	Index    int         // position in the history H
}

// IsRead reports whether the event is a read.
func (e Event) IsRead() bool { return e.Op.Kind == ot.KindRead }

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s: do(%s) -> %q", e.Index, e.Replica, e.Op, list.Render(e.Returned))
}

// History is the sequence H of do events of an abstract execution
// (Definition 2.9). Events appear in a total order consistent with the
// happens-before relation of the underlying concrete execution.
//
// Seed lists the elements of the initial document, if the execution started
// from a non-empty list. The paper's specifications assume an initially
// empty list; seeding is a harness convenience (e.g. Figure 8 starts from
// "abc"), and the checkers treat seed elements as inserted-before-everything.
type History struct {
	Events []Event
	Seed   []list.Elem
}

// Append records a new do event, assigning its index. Returned and visible
// are captured by reference; callers must pass snapshots they will not
// mutate (the protocol recorders always do).
func (h *History) Append(replica string, op ot.Op, returned []list.Elem, visible opid.Set) {
	h.Events = append(h.Events, Event{
		Replica:  replica,
		Op:       op,
		Returned: returned,
		Visible:  visible,
		Index:    len(h.Events),
	})
}

// Len returns the number of do events.
func (h *History) Len() int { return len(h.Events) }

// Updates returns the events whose operations are list updates (Ins/Del).
func (h *History) Updates() []Event {
	var out []Event
	for _, e := range h.Events {
		if e.Op.IsUpdate() {
			out = append(out, e)
		}
	}
	return out
}

// Elems returns elems(A): every element ever inserted in the history.
func (h *History) Elems() map[opid.OpID]list.Elem {
	out := make(map[opid.OpID]list.Elem)
	for _, e := range h.Events {
		if e.Op.Kind == ot.KindIns {
			out[e.Op.Elem.ID] = e.Op.Elem
		}
	}
	return out
}

// ByID returns the update event for the given original operation ID, if any.
func (h *History) ByID(id opid.OpID) (Event, bool) {
	for _, e := range h.Events {
		if e.Op.IsUpdate() && e.Op.ID == id {
			return e, true
		}
	}
	return Event{}, false
}

// Causal reports whether event a is causally before event b (Definition
// 4.1), derived from the recorded visibility: an update event a → b iff a's
// operation is visible to b. For read events (which have no operation ID) we
// fall back to same-replica program order.
func (h *History) Causal(a, b Event) bool {
	if a.Op.IsUpdate() && b.Visible.Contains(a.Op.ID) {
		return true
	}
	return a.Replica == b.Replica && a.Index < b.Index
}

// Concurrent reports whether two events are concurrent (Definition 4.2).
func (h *History) Concurrent(a, b Event) bool {
	return !h.Causal(a, b) && !h.Causal(b, a)
}

// String renders the whole history, one event per line.
func (h *History) String() string {
	var b strings.Builder
	for _, e := range h.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// WellFormed performs sanity checks on a recorded history:
//
//  1. every update operation has a unique identity;
//  2. visibility is monotone per replica (later events at a replica see a
//     superset of what earlier events saw, per Definition 2.9 condition 1);
//  3. an event's visible set only references updates that occur in H
//     (message delivery only from sends, Definition 2.4); and
//  4. visibility respects the history order (condition 2 of Definition 2.9):
//     a visible update appears earlier in H.
//
// A non-nil error means the recorder (not the protocol) is broken.
func (h *History) WellFormed() error {
	seen := make(map[opid.OpID]int)
	lastVisible := make(map[string]opid.Set)
	for _, e := range h.Events {
		if e.Op.IsUpdate() {
			if prev, dup := seen[e.Op.ID]; dup {
				return fmt.Errorf("history: duplicate op %s at events #%d and #%d", e.Op.ID, prev, e.Index)
			}
			seen[e.Op.ID] = e.Index
		}
		for id := range e.Visible {
			idx, ok := seen[id]
			if !ok {
				return fmt.Errorf("history: event #%d sees unknown or future op %s", e.Index, id)
			}
			if idx >= e.Index {
				return fmt.Errorf("history: event #%d sees op %s recorded later (#%d)", e.Index, id, idx)
			}
		}
		if prev, ok := lastVisible[e.Replica]; ok {
			if !prev.Subset(e.Visible) {
				return fmt.Errorf("history: replica %s visibility not monotone at event #%d", e.Replica, e.Index)
			}
		}
		lastVisible[e.Replica] = e.Visible
	}
	return nil
}

// Recorder receives do events as a protocol executes. *History implements
// it; protocols accept a nil Recorder to disable recording (benchmarks).
type Recorder interface {
	Record(replica string, op ot.Op, returned []list.Elem, visible opid.Set)
}

// Record implements Recorder for History.
func (h *History) Record(replica string, op ot.Op, returned []list.Elem, visible opid.Set) {
	h.Append(replica, op, returned, visible)
}

// LockedRecorder wraps a Recorder with a mutex so concurrently running
// replicas (the goroutine runtime in internal/sim) can share one history.
type LockedRecorder struct {
	mu sync.Mutex
	R  Recorder
}

// Record implements Recorder.
func (l *LockedRecorder) Record(replica string, op ot.Op, returned []list.Elem, visible opid.Set) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.R.Record(replica, op, returned, visible)
}
