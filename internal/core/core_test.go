package core

import (
	"strings"
	"testing"

	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

func id(c int32, s uint64) opid.OpID {
	return opid.OpID{Client: opid.ClientID(c), Seq: s}
}

func TestHistoryAppendAndQueries(t *testing.T) {
	var h History
	a := id(1, 1)
	x := id(2, 1)
	ea := list.Elem{Val: 'a', ID: a}
	ex := list.Elem{Val: 'x', ID: x}

	h.Append("c1", ot.Ins('a', 0, a), []list.Elem{ea}, opid.NewSet())
	h.Append("c2", ot.Ins('x', 0, x), []list.Elem{ex}, opid.NewSet())
	h.Append("c2", ot.Read(id(-1, 1)), []list.Elem{ex, ea}, opid.NewSet(a, x))

	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	if got := len(h.Updates()); got != 2 {
		t.Fatalf("Updates = %d", got)
	}
	elems := h.Elems()
	if len(elems) != 2 || elems[a] != ea || elems[x] != ex {
		t.Fatalf("Elems = %v", elems)
	}
	if e, ok := h.ByID(a); !ok || e.Replica != "c1" {
		t.Fatalf("ByID(a) = %v, %v", e, ok)
	}
	if _, ok := h.ByID(id(9, 9)); ok {
		t.Fatal("ByID of unknown op must fail")
	}
	if !h.Events[2].IsRead() || h.Events[0].IsRead() {
		t.Error("IsRead misclassifies")
	}
	s := h.String()
	if !strings.Contains(s, "c1") || !strings.Contains(s, "Read") {
		t.Errorf("String() = %q", s)
	}
}

func TestCausalAndConcurrent(t *testing.T) {
	var h History
	a, x := id(1, 1), id(2, 1)
	h.Append("c1", ot.Ins('a', 0, a), nil, opid.NewSet())
	h.Append("c2", ot.Ins('x', 0, x), nil, opid.NewSet())      // concurrent with a
	h.Append("c2", ot.Read(id(-1, 1)), nil, opid.NewSet(a, x)) // sees both

	e0, e1, e2 := h.Events[0], h.Events[1], h.Events[2]
	if !h.Concurrent(e0, e1) {
		t.Error("e0 and e1 must be concurrent")
	}
	if !h.Causal(e0, e2) || !h.Causal(e1, e2) {
		t.Error("both inserts are causally before the read")
	}
	if h.Causal(e2, e0) {
		t.Error("read cannot precede the insert")
	}
	// Same-replica program order for reads.
	if !h.Causal(e1, e2) {
		t.Error("same-replica order must be causal")
	}
}

func TestWellFormed(t *testing.T) {
	t.Run("ok", func(t *testing.T) {
		var h History
		a := id(1, 1)
		h.Append("c1", ot.Ins('a', 0, a), nil, opid.NewSet())
		h.Append("c2", ot.Read(id(-1, 1)), nil, opid.NewSet(a))
		if err := h.WellFormed(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("duplicate op", func(t *testing.T) {
		var h History
		a := id(1, 1)
		h.Append("c1", ot.Ins('a', 0, a), nil, opid.NewSet())
		h.Append("c1", ot.Ins('b', 0, a), nil, opid.NewSet(a))
		if err := h.WellFormed(); err == nil {
			t.Fatal("want duplicate error")
		}
	})
	t.Run("unknown visible op", func(t *testing.T) {
		var h History
		h.Append("c1", ot.Read(id(-1, 1)), nil, opid.NewSet(id(9, 9)))
		if err := h.WellFormed(); err == nil {
			t.Fatal("want unknown-op error")
		}
	})
	t.Run("non-monotone visibility", func(t *testing.T) {
		var h History
		a := id(1, 1)
		h.Append("c1", ot.Ins('a', 0, a), nil, opid.NewSet())
		h.Append("c2", ot.Read(id(-1, 1)), nil, opid.NewSet(a))
		h.Append("c2", ot.Read(id(-1, 2)), nil, opid.NewSet())
		if err := h.WellFormed(); err == nil {
			t.Fatal("want monotonicity error")
		}
	})
}

func TestRecorders(t *testing.T) {
	var h History
	var rec Recorder = &h
	rec.Record("c1", ot.Ins('a', 0, id(1, 1)), nil, opid.NewSet())
	if h.Len() != 1 {
		t.Fatal("History.Record did not append")
	}

	locked := &LockedRecorder{R: &h}
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func(i int) {
			locked.Record("cX", ot.Ins('b', 0, id(int32(i+2), 1)), nil, opid.NewSet())
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if h.Len() != 5 {
		t.Fatalf("Len = %d, want 5", h.Len())
	}
	// Indexes must be consistent.
	for i, e := range h.Events {
		if e.Index != i {
			t.Fatalf("event %d has index %d", i, e.Index)
		}
	}
}

func TestScheduleBuilders(t *testing.T) {
	var s Schedule
	s = s.Generate(1).ServerRecv(1).ClientRecv(2).Read(2)
	want := []StepKind{StepGenerate, StepServer, StepClient, StepRead}
	if len(s) != len(want) {
		t.Fatalf("len = %d", len(s))
	}
	for i, k := range want {
		if s[i].Kind != k {
			t.Errorf("step %d kind = %v, want %v", i, s[i].Kind, k)
		}
	}
	if s[0].Client != 1 || s[2].Client != 2 {
		t.Error("clients wrong")
	}
}

func TestStepKindString(t *testing.T) {
	pairs := map[StepKind]string{
		StepGenerate: "generate",
		StepServer:   "server-recv",
		StepClient:   "client-recv",
		StepRead:     "read",
		StepKind(77): "StepKind(77)",
	}
	for k, want := range pairs {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}
