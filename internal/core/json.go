package core

import (
	"encoding/json"
	"fmt"

	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// The wire representation of histories. cmd/speccheck consumes this format,
// and cmd/jupitersim can emit it, so recorded executions can be archived and
// re-checked offline.

type opIDJSON struct {
	Client int32  `json:"client"`
	Seq    uint64 `json:"seq"`
}

type elemJSON struct {
	Val string   `json:"val"`
	ID  opIDJSON `json:"id"`
}

type opJSON struct {
	Kind string    `json:"kind"` // "ins", "del", "nop", "read"
	Val  string    `json:"val,omitempty"`
	Elem *elemJSON `json:"elem,omitempty"`
	Pos  int       `json:"pos"`
	ID   opIDJSON  `json:"id"`
	Pri  int32     `json:"pri"`
}

type eventJSON struct {
	Replica  string     `json:"replica"`
	Op       opJSON     `json:"op"`
	Returned []elemJSON `json:"returned"`
	Visible  []opIDJSON `json:"visible"`
}

type historyJSON struct {
	Seed   []elemJSON  `json:"seed,omitempty"`
	Events []eventJSON `json:"events"`
}

func idToJSON(id opid.OpID) opIDJSON {
	return opIDJSON{Client: int32(id.Client), Seq: id.Seq}
}

func idFromJSON(j opIDJSON) opid.OpID {
	return opid.OpID{Client: opid.ClientID(j.Client), Seq: j.Seq}
}

func elemToJSON(e list.Elem) elemJSON {
	return elemJSON{Val: string(e.Val), ID: idToJSON(e.ID)}
}

func elemFromJSON(j elemJSON) (list.Elem, error) {
	r := []rune(j.Val)
	if len(r) != 1 {
		return list.Elem{}, fmt.Errorf("history json: element value %q is not a single rune", j.Val)
	}
	return list.Elem{Val: r[0], ID: idFromJSON(j.ID)}, nil
}

func opToJSON(o ot.Op) opJSON {
	j := opJSON{Pos: o.Pos, ID: idToJSON(o.ID), Pri: o.Pri}
	switch o.Kind {
	case ot.KindIns:
		j.Kind = "ins"
		j.Val = string(o.Elem.Val)
	case ot.KindDel:
		j.Kind = "del"
		e := elemToJSON(o.Elem)
		j.Elem = &e
	case ot.KindNop:
		j.Kind = "nop"
	case ot.KindRead:
		j.Kind = "read"
	}
	return j
}

func opFromJSON(j opJSON) (ot.Op, error) {
	id := idFromJSON(j.ID)
	switch j.Kind {
	case "ins":
		r := []rune(j.Val)
		if len(r) != 1 {
			return ot.Op{}, fmt.Errorf("history json: insert value %q is not a single rune", j.Val)
		}
		o := ot.Ins(r[0], j.Pos, id)
		o.Pri = j.Pri
		return o, nil
	case "del":
		if j.Elem == nil {
			return ot.Op{}, fmt.Errorf("history json: delete without element")
		}
		e, err := elemFromJSON(*j.Elem)
		if err != nil {
			return ot.Op{}, err
		}
		o := ot.Del(e, j.Pos, id)
		o.Pri = j.Pri
		return o, nil
	case "nop":
		return ot.Nop(id), nil
	case "read":
		return ot.Read(id), nil
	default:
		return ot.Op{}, fmt.Errorf("history json: unknown op kind %q", j.Kind)
	}
}

// MarshalJSON implements json.Marshaler.
func (h *History) MarshalJSON() ([]byte, error) {
	out := historyJSON{Events: make([]eventJSON, 0, len(h.Events))}
	for _, e := range h.Seed {
		out.Seed = append(out.Seed, elemToJSON(e))
	}
	for _, e := range h.Events {
		ev := eventJSON{
			Replica:  e.Replica,
			Op:       opToJSON(e.Op),
			Returned: make([]elemJSON, 0, len(e.Returned)),
			Visible:  make([]opIDJSON, 0, len(e.Visible)),
		}
		for _, el := range e.Returned {
			ev.Returned = append(ev.Returned, elemToJSON(el))
		}
		for _, id := range e.Visible.Sorted() {
			ev.Visible = append(ev.Visible, idToJSON(id))
		}
		out.Events = append(out.Events, ev)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *History) UnmarshalJSON(data []byte) error {
	var in historyJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("history json: %w", err)
	}
	h.Events = nil
	h.Seed = nil
	for _, ej := range in.Seed {
		e, err := elemFromJSON(ej)
		if err != nil {
			return err
		}
		h.Seed = append(h.Seed, e)
	}
	for _, ev := range in.Events {
		op, err := opFromJSON(ev.Op)
		if err != nil {
			return err
		}
		returned := make([]list.Elem, 0, len(ev.Returned))
		for _, ej := range ev.Returned {
			e, err := elemFromJSON(ej)
			if err != nil {
				return err
			}
			returned = append(returned, e)
		}
		visible := opid.NewSet()
		for _, ij := range ev.Visible {
			visible = visible.Add(idFromJSON(ij))
		}
		h.Append(ev.Replica, op, returned, visible)
	}
	return nil
}
