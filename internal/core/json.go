package core

import (
	"encoding/json"
	"fmt"

	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// The wire representation of operations, elements, and histories.
// cmd/speccheck consumes the history format, cmd/jupitersim can emit it, and
// the network runtime (internal/wire, internal/server, internal/client)
// reuses the operation/element/identifier encodings for its frames, so a
// recorded execution and a captured network trace speak the same JSON.

// OpIDJSON is the wire form of an opid.OpID.
type OpIDJSON struct {
	Client int32  `json:"client"`
	Seq    uint64 `json:"seq"`
}

// ElemJSON is the wire form of a list.Elem.
type ElemJSON struct {
	Val string   `json:"val"`
	ID  OpIDJSON `json:"id"`
}

// OpJSON is the wire form of an ot.Op.
type OpJSON struct {
	Kind string    `json:"kind"` // "ins", "del", "nop", "read"
	Val  string    `json:"val,omitempty"`
	Elem *ElemJSON `json:"elem,omitempty"`
	Pos  int       `json:"pos"`
	ID   OpIDJSON  `json:"id"`
	Pri  int32     `json:"pri"`
}

type eventJSON struct {
	Replica  string     `json:"replica"`
	Op       OpJSON     `json:"op"`
	Returned []ElemJSON `json:"returned"`
	Visible  []OpIDJSON `json:"visible"`
}

type historyJSON struct {
	Seed   []ElemJSON  `json:"seed,omitempty"`
	Events []eventJSON `json:"events"`
}

// IDToJSON converts an operation identifier to its wire form.
func IDToJSON(id opid.OpID) OpIDJSON {
	return OpIDJSON{Client: int32(id.Client), Seq: id.Seq}
}

// IDFromJSON converts a wire identifier back.
func IDFromJSON(j OpIDJSON) opid.OpID {
	return opid.OpID{Client: opid.ClientID(j.Client), Seq: j.Seq}
}

// ElemToJSON converts a list element to its wire form.
func ElemToJSON(e list.Elem) ElemJSON {
	return ElemJSON{Val: string(e.Val), ID: IDToJSON(e.ID)}
}

// ElemFromJSON converts a wire element back, validating the value is a
// single rune.
func ElemFromJSON(j ElemJSON) (list.Elem, error) {
	r := []rune(j.Val)
	if len(r) != 1 {
		return list.Elem{}, fmt.Errorf("history json: element value %q is not a single rune", j.Val)
	}
	return list.Elem{Val: r[0], ID: IDFromJSON(j.ID)}, nil
}

// OpToJSON converts an operation to its wire form.
func OpToJSON(o ot.Op) OpJSON {
	j := OpJSON{Pos: o.Pos, ID: IDToJSON(o.ID), Pri: o.Pri}
	switch o.Kind {
	case ot.KindIns:
		j.Kind = "ins"
		j.Val = string(o.Elem.Val)
	case ot.KindDel:
		j.Kind = "del"
		e := ElemToJSON(o.Elem)
		j.Elem = &e
	case ot.KindNop:
		j.Kind = "nop"
	case ot.KindRead:
		j.Kind = "read"
	}
	return j
}

// OpFromJSON converts a wire operation back, validating kind and payload.
func OpFromJSON(j OpJSON) (ot.Op, error) {
	id := IDFromJSON(j.ID)
	switch j.Kind {
	case "ins":
		r := []rune(j.Val)
		if len(r) != 1 {
			return ot.Op{}, fmt.Errorf("history json: insert value %q is not a single rune", j.Val)
		}
		o := ot.Ins(r[0], j.Pos, id)
		o.Pri = j.Pri
		return o, nil
	case "del":
		if j.Elem == nil {
			return ot.Op{}, fmt.Errorf("history json: delete without element")
		}
		e, err := ElemFromJSON(*j.Elem)
		if err != nil {
			return ot.Op{}, err
		}
		o := ot.Del(e, j.Pos, id)
		o.Pri = j.Pri
		return o, nil
	case "nop":
		return ot.Nop(id), nil
	case "read":
		return ot.Read(id), nil
	default:
		return ot.Op{}, fmt.Errorf("history json: unknown op kind %q", j.Kind)
	}
}

// SetToJSON converts an identifier set to its wire form, in canonical order.
func SetToJSON(s opid.Set) []OpIDJSON {
	out := make([]OpIDJSON, 0, len(s))
	for _, id := range s.Sorted() {
		out = append(out, IDToJSON(id))
	}
	return out
}

// SetFromJSON converts a wire identifier list back to a set.
func SetFromJSON(js []OpIDJSON) opid.Set {
	s := opid.NewSet()
	for _, j := range js {
		s.Put(IDFromJSON(j))
	}
	return s
}

// MarshalJSON implements json.Marshaler.
func (h *History) MarshalJSON() ([]byte, error) {
	out := historyJSON{Events: make([]eventJSON, 0, len(h.Events))}
	for _, e := range h.Seed {
		out.Seed = append(out.Seed, ElemToJSON(e))
	}
	for _, e := range h.Events {
		ev := eventJSON{
			Replica:  e.Replica,
			Op:       OpToJSON(e.Op),
			Returned: make([]ElemJSON, 0, len(e.Returned)),
			Visible:  make([]OpIDJSON, 0, len(e.Visible)),
		}
		for _, el := range e.Returned {
			ev.Returned = append(ev.Returned, ElemToJSON(el))
		}
		for _, id := range e.Visible.Sorted() {
			ev.Visible = append(ev.Visible, IDToJSON(id))
		}
		out.Events = append(out.Events, ev)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *History) UnmarshalJSON(data []byte) error {
	var in historyJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("history json: %w", err)
	}
	h.Events = nil
	h.Seed = nil
	for _, ej := range in.Seed {
		e, err := ElemFromJSON(ej)
		if err != nil {
			return err
		}
		h.Seed = append(h.Seed, e)
	}
	for _, ev := range in.Events {
		op, err := OpFromJSON(ev.Op)
		if err != nil {
			return err
		}
		returned := make([]list.Elem, 0, len(ev.Returned))
		for _, ej := range ev.Returned {
			e, err := ElemFromJSON(ej)
			if err != nil {
				return err
			}
			returned = append(returned, e)
		}
		visible := opid.NewSet()
		for _, ij := range ev.Visible {
			visible = visible.Add(IDFromJSON(ij))
		}
		h.Append(ev.Replica, op, returned, visible)
	}
	return nil
}
