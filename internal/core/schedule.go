package core

import (
	"fmt"

	"jupiter/internal/opid"
)

// StepKind enumerates the three kinds of scheduler steps that drive a
// client/server execution. A Schedule (Definition 4.7) is "an execution with
// the arguments of each event erased": it fixes WHEN each replica generates
// or processes, while the protocol under test determines WHAT happens.
type StepKind uint8

// Scheduler step kinds.
const (
	// StepGenerate makes a client invoke its next scripted user operation
	// (a do event followed by a send to the server).
	StepGenerate StepKind = iota + 1
	// StepServer makes the server receive and process the next pending
	// message from the given client's FIFO channel.
	StepServer
	// StepClient makes the given client receive and process the next pending
	// message on its FIFO channel from the server.
	StepClient
	// StepRead makes a client (or the server, with Client < 0) perform a
	// read, recording a do(Read, w) event.
	StepRead
)

// String implements fmt.Stringer.
func (k StepKind) String() string {
	switch k {
	case StepGenerate:
		return "generate"
	case StepServer:
		return "server-recv"
	case StepClient:
		return "client-recv"
	case StepRead:
		return "read"
	default:
		return fmt.Sprintf("StepKind(%d)", uint8(k))
	}
}

// Step is one scheduler step.
type Step struct {
	Kind   StepKind
	Client opid.ClientID // which client generates/receives/reads; for StepServer, whose channel the server services
}

// Schedule is a deterministic interleaving of generation and delivery steps.
// Running the same Schedule against two protocols is how the Equivalence
// Theorem (Theorem 7.1) is checked: "the behaviors of corresponding replicas
// ... are the same under the same schedule".
type Schedule []Step

// Generate appends a generation step for client c and returns the schedule.
func (s Schedule) Generate(c opid.ClientID) Schedule {
	return append(s, Step{Kind: StepGenerate, Client: c})
}

// ServerRecv appends a server-receive step servicing client c's channel.
func (s Schedule) ServerRecv(c opid.ClientID) Schedule {
	return append(s, Step{Kind: StepServer, Client: c})
}

// ClientRecv appends a client-receive step for client c.
func (s Schedule) ClientRecv(c opid.ClientID) Schedule {
	return append(s, Step{Kind: StepClient, Client: c})
}

// Read appends a read step for client c.
func (s Schedule) Read(c opid.ClientID) Schedule {
	return append(s, Step{Kind: StepRead, Client: c})
}
