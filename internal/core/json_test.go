package core

import (
	"encoding/json"
	"strings"
	"testing"

	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

func sampleHistory() *History {
	var h History
	a := id(1, 1)
	d := id(2, 1)
	ea := list.Elem{Val: 'a', ID: a}
	h.Seed = []list.Elem{{Val: 's', ID: id(100, 1)}}
	h.Append("c1", ot.Ins('a', 0, a), []list.Elem{ea}, opid.NewSet())
	h.Append("c2", ot.Del(ea, 0, d), []list.Elem{}, opid.NewSet(a))
	h.Append("c2", ot.Nop(id(2, 2)), []list.Elem{}, opid.NewSet(a, d))
	h.Append("c1", ot.Read(id(-1, 1)), []list.Elem{}, opid.NewSet(a, d))
	return &h
}

func TestJSONRoundTrip(t *testing.T) {
	h := sampleHistory()
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back History
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != h.Len() || len(back.Seed) != 1 {
		t.Fatalf("shape lost: %d events, %d seed", back.Len(), len(back.Seed))
	}
	for i := range h.Events {
		a, b := h.Events[i], back.Events[i]
		if a.Replica != b.Replica || a.Op != b.Op || !a.Visible.Equal(b.Visible) || len(a.Returned) != len(b.Returned) {
			t.Fatalf("event %d: %v vs %v", i, a, b)
		}
	}
	// Re-marshaling produces identical bytes (canonical form).
	data2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("round trip is not canonical")
	}
}

func TestJSONKindCoverage(t *testing.T) {
	data, err := json.Marshal(sampleHistory())
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{`"kind":"ins"`, `"kind":"del"`, `"kind":"nop"`, `"kind":"read"`} {
		if !strings.Contains(string(data), kind) {
			t.Errorf("serialized history missing %s", kind)
		}
	}
}

func TestJSONDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"unknown kind":   `{"events":[{"replica":"c1","op":{"kind":"zap","id":{"client":1,"seq":1}}}]}`,
		"bad ins val":    `{"events":[{"replica":"c1","op":{"kind":"ins","val":"xy","id":{"client":1,"seq":1}}}]}`,
		"del no elem":    `{"events":[{"replica":"c1","op":{"kind":"del","id":{"client":1,"seq":1}}}]}`,
		"bad seed":       `{"seed":[{"val":"zz","id":{"client":1,"seq":1}}]}`,
		"bad returned":   `{"events":[{"replica":"c1","op":{"kind":"nop","id":{"client":1,"seq":1}},"returned":[{"val":""}]}]}`,
		"malformed json": `{`,
	}
	for name, raw := range cases {
		var h History
		if err := json.Unmarshal([]byte(raw), &h); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}
