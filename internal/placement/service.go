package placement

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"jupiter/internal/metrics"
	"jupiter/internal/wire"
)

// Config configures a placement Service.
type Config struct {
	// Addr is the TCP listen address for the route protocol (route/routes
	// frames over the ordinary wire layer).
	Addr string
	// HTTPAddr, when non-empty, serves the admin surface: "/" the metrics
	// registry, "/table" the routing table with per-shard doc counts,
	// "/migrate" (POST, doc= and to= params) a migration trigger.
	HTTPAddr string
	// Table is the initial routing table. Version 0 is bumped to 1 so a
	// client can always treat version 0 as "no table yet".
	Table wire.Table
	// MaxFrame caps wire frame bodies (0 = wire.DefaultMaxFrame).
	MaxFrame int
	// DialTimeout bounds the dial to a source shard when driving a
	// migration (0 = 5s).
	DialTimeout time.Duration
	// MigrationToken is carried in every Migrate command. Shards configured
	// with a matching token refuse placement-plane frames without it, so an
	// ordinary client connection cannot freeze or exfiltrate a document.
	MigrationToken string
	// Listener, when non-nil, is used instead of listening on Addr.
	Listener net.Listener
	// Logf, when non-nil, receives one line per event.
	Logf func(format string, args ...any)
}

// Service is the placement daemon (cmd/jupiterplace): it owns the routing
// table, answers route queries from clients, and drives document migrations
// against the shards. One instance per cluster; the table is in-memory —
// restarting it loses overrides, which is safe (shards keep serving Moved
// hints for documents they migrated away, so clients still converge).
type Service struct {
	cfg Config
	reg *metrics.Registry

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	mu        sync.Mutex
	ring      *Ring
	seen      map[string]struct{} // docs observed in route queries
	migrating map[string]bool     // per-doc in-flight migration latch
	closed    bool

	wg sync.WaitGroup
}

// ErrClosed is returned for operations on a shut-down service.
var ErrClosed = errors.New("placement: service closed")

// NewService validates the table and creates a service; call Start to begin
// serving.
func NewService(cfg Config) (*Service, error) {
	if cfg.Table.Version == 0 {
		cfg.Table.Version = 1
	}
	ring, err := NewRing(cfg.Table)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:       cfg,
		reg:       metrics.NewRegistry(),
		ring:      ring,
		seen:      make(map[string]struct{}),
		migrating: make(map[string]bool),
	}
	s.reg.Gauge("table_version").Set(int64(ring.Version()))
	s.reg.Gauge("shards").Set(int64(len(cfg.Table.Shards)))
	return s, nil
}

// Metrics returns the service's metrics registry.
func (s *Service) Metrics() *metrics.Registry { return s.reg }

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Service) dialTimeout() time.Duration {
	if s.cfg.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return s.cfg.DialTimeout
}

// Start binds the listeners and spawns the accept loops.
func (s *Service) Start() error {
	ln := s.cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", s.cfg.Addr)
		if err != nil {
			return fmt.Errorf("placement: listen: %w", err)
		}
	}
	s.ln = ln
	if s.cfg.HTTPAddr != "" {
		hln, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("placement: http listen: %w", err)
		}
		s.httpLn = hln
		mux := http.NewServeMux()
		mux.Handle("/", s.reg.Handler())
		mux.HandleFunc("/table", s.serveTable)
		mux.HandleFunc("/migrate", s.serveMigrate)
		s.httpSrv = &http.Server{Handler: mux}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.httpSrv.Serve(hln)
		}()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound route-protocol address.
func (s *Service) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// HTTPAddr returns the bound admin address ("" when disabled).
func (s *Service) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// Close stops the service and joins its goroutines.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	if s.httpSrv != nil {
		_ = s.httpSrv.Close()
	}
	s.wg.Wait()
}

func (s *Service) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(nc)
	}
}

// serveConn answers route queries on one connection: every Route frame gets
// a Routes frame carrying the full current table (tables are tiny — a
// version, a shard list, and the overrides — so there is no delta protocol).
func (s *Service) serveConn(nc net.Conn) {
	defer s.wg.Done()
	defer nc.Close()
	st := wire.NewStream(nc, s.cfg.MaxFrame)
	for {
		_ = nc.SetReadDeadline(time.Now().Add(time.Minute))
		f, err := st.Read()
		if err != nil {
			return
		}
		switch f.Type {
		case wire.TRoute:
			s.reg.Counter("route_requests_total").Inc()
			s.mu.Lock()
			ring := s.ring
			if f.Route != nil && f.Route.Doc != "" {
				s.seen[f.Route.Doc] = struct{}{}
			}
			s.mu.Unlock()
			_ = nc.SetWriteDeadline(time.Now().Add(10 * time.Second))
			if err := st.Write(&wire.Frame{Type: wire.TRoutes, Routes: &wire.Routes{Table: ring.Table()}}); err != nil {
				return
			}
		case wire.TBye:
			return
		default:
			s.reg.Counter("protocol_errors_total").Inc()
			_ = st.Write(&wire.Frame{Type: wire.TError, Error: &wire.Error{
				Code: wire.CodeProtocol, Msg: "unexpected frame type " + f.Type,
			}})
			return
		}
	}
}

// Lookup routes a document on the current table.
func (s *Service) Lookup(doc string) wire.Shard {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ring.Lookup(doc)
}

// Table returns a copy of the current routing table.
func (s *Service) Table() wire.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ring.Table()
}

// DocCounts returns, per shard id, how many route-queried documents the
// current table assigns to it. Observational (only docs some client asked
// about), which is exactly what the operator wants to see balanced.
func (s *Service) DocCounts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	counts := make(map[string]int, len(s.ring.table.Shards))
	for i := range s.ring.table.Shards {
		counts[s.ring.table.Shards[i].ID] = 0
	}
	for doc := range s.seen {
		counts[s.ring.Lookup(doc).ID]++
	}
	return counts
}

// MigrateTo moves a document to the given shard: it asks the document's
// current shard to freeze and transfer it, and on success records an
// override and bumps the table version. Concurrent calls for the same
// document are serialized by an in-flight latch.
func (s *Service) MigrateTo(doc, shardID string) error {
	if doc == "" {
		return errors.New("placement: migrate: empty doc")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.migrating[doc] {
		s.mu.Unlock()
		return fmt.Errorf("placement: migration of %q already in flight", doc)
	}
	target, err := s.ring.Shard(shardID)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	source := s.ring.Lookup(doc)
	if source.ID == target.ID {
		s.mu.Unlock()
		return nil // already there
	}
	s.migrating[doc] = true
	s.seen[doc] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.migrating, doc)
		s.mu.Unlock()
	}()

	s.logf("migrating %q: shard %s -> %s", doc, source.ID, target.ID)
	if err := s.driveMigration(doc, source, target); err != nil {
		s.reg.Counter("migration_failures_total").Inc()
		s.logf("migrating %q: failed: %v", doc, err)
		return err
	}

	s.mu.Lock()
	t := s.ring.Table()
	replaced := false
	for i := range t.Overrides {
		if t.Overrides[i].Doc == doc {
			t.Overrides[i].Shard = target.ID
			replaced = true
		}
	}
	if !replaced {
		t.Overrides = append(t.Overrides, wire.Override{Doc: doc, Shard: target.ID})
	}
	t.Version++
	ring, err := NewRing(t)
	if err != nil {
		s.mu.Unlock()
		return fmt.Errorf("placement: rebuild after migration: %w", err)
	}
	s.ring = ring
	s.mu.Unlock()
	s.reg.Counter("migrations_total").Inc()
	s.reg.Gauge("table_version").Set(int64(t.Version))
	s.logf("migrating %q: done, table v%d", doc, t.Version)
	return nil
}

// driveMigration sends the Migrate command to the source shard and waits
// for its ack. Dial errors try the source's next address; a received
// negative ack is authoritative.
func (s *Service) driveMigration(doc string, source, target wire.Shard) error {
	cmd := &wire.Frame{Type: wire.TMigrate, Migrate: &wire.Migrate{
		Doc: doc, TargetShard: target.ID, TargetAddrs: target.Addrs,
		Token: s.cfg.MigrationToken,
	}}
	var lastErr error
	for _, addr := range source.Addrs {
		nc, err := net.DialTimeout("tcp", addr, s.dialTimeout())
		if err != nil {
			lastErr = err
			continue
		}
		ack, err := s.command(nc, cmd)
		nc.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if !ack.OK {
			return fmt.Errorf("placement: source %s: %s", source.ID, ack.Err)
		}
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("placement: shard %s has no addresses", source.ID)
	}
	return lastErr
}

func (s *Service) command(nc net.Conn, cmd *wire.Frame) (*wire.MigAck, error) {
	// Generous deadline: the source's side of the deadline covers freeze +
	// transfer + install before it can ack.
	_ = nc.SetDeadline(time.Now().Add(30 * time.Second))
	st := wire.NewStream(nc, s.cfg.MaxFrame)
	if err := st.Write(cmd); err != nil {
		return nil, err
	}
	f, err := st.Read()
	if err != nil {
		return nil, err
	}
	if f.Type != wire.TMigAck {
		return nil, fmt.Errorf("placement: unexpected %s frame from shard", f.Type)
	}
	return f.MigAck, nil
}

// tableView is the /table JSON document.
type tableView struct {
	Table wire.Table     `json:"table"`
	Docs  map[string]int `json:"docs"`
}

func (s *Service) serveTable(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(tableView{Table: s.Table(), Docs: s.DocCounts()})
}

func (s *Service) serveMigrate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	doc, to := r.FormValue("doc"), r.FormValue("to")
	if doc == "" || to == "" {
		http.Error(w, "doc and to parameters required", http.StatusBadRequest)
		return
	}
	if err := s.MigrateTo(doc, to); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"doc": doc, "shard": to, "version": s.Table().Version})
}
