package placement_test

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jupiter/internal/client"
	"jupiter/internal/core"
	"jupiter/internal/placement"
	"jupiter/internal/server"
	"jupiter/internal/wire"
)

// Regression coverage for the migration hardening pass: persisted-but-idle
// documents must migrate with their on-disk state, the placement plane must
// honor the shared migration token, and a client without placement routing
// must follow (or terminally refuse) Moved hints instead of redialing the
// retired shard forever.

// typeText inserts text into c one rune at a time, appending at the end.
func typeText(t *testing.T, c *client.Client, text string) {
	t.Helper()
	for _, r := range text {
		if err := c.Insert(r, len(c.Document())); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMigrationOfPersistedIdleDoc: a document that exists only as a persisted
// save (the shard restarted, no client rejoined) must still migrate with its
// full state. The broken behavior was "not hosted → nothing to transfer",
// which recorded a permanent Moved hint and stranded the on-disk save.
func TestMigrationOfPersistedIdleDoc(t *testing.T) {
	t.Cleanup(migLeakCheck(t))
	const doc = "mig-persist"
	const text = "durable"
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Phase 1: write on a persist-enabled shard, then shut it down
	// gracefully — the document now lives only on disk.
	eng0 := server.New(server.Config{Addr: "127.0.0.1:0", ShardID: "s0", PersistDir: dir, Logf: t.Logf})
	if err := eng0.Start(); err != nil {
		t.Fatal(err)
	}
	c0, err := client.Dial(client.Config{Addr: eng0.Addr(), Doc: doc, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	typeText(t, c0, text)
	if err := c0.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	_ = c0.Close()
	if err := eng0.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	saved := filepath.Join(dir, doc+".json")
	if _, err := os.Stat(saved); err != nil {
		t.Fatalf("persisted save missing after shutdown: %v", err)
	}

	// Phase 2: restart the shard (nobody joins, so the doc is NOT reloaded)
	// and migrate the document to a fresh peer shard.
	startPersistShard := func(id, pdir string) *server.Engine {
		eng := server.New(server.Config{Addr: "127.0.0.1:0", ShardID: id, PersistDir: pdir, Logf: t.Logf})
		if err := eng.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer scancel()
			_ = eng.Shutdown(sctx)
		})
		return eng
	}
	engines := []*server.Engine{startPersistShard("s0", dir), startPersistShard("s1", t.TempDir())}

	tbl := wire.Table{Version: 1, VNodes: 16, Shards: []wire.Shard{
		{ID: "s0", Addrs: []string{engines[0].Addr()}},
		{ID: "s1", Addrs: []string{engines[1].Addr()}},
	}}
	svc, err := placement.NewService(placement.Config{Addr: "127.0.0.1:0", Table: tbl, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)

	if err := svc.MigrateTo(doc, "s1"); err != nil {
		t.Fatalf("migrating persisted idle doc: %v", err)
	}

	// The target holds the restored state, the source's save is gone (a
	// later restart must not resurrect a stale copy), and a placement-routed
	// client resumes against the full document.
	st, ok := engines[1].DocState(doc)
	if !ok {
		t.Fatal("target shard does not host the migrated doc")
	}
	if st.Text != text || st.Seq != uint64(len(text)) {
		t.Fatalf("target state %q seq %d, want %q seq %d", st.Text, st.Seq, text, len(text))
	}
	if _, err := os.Stat(saved); !os.IsNotExist(err) {
		t.Errorf("source persisted save still on disk after migration (stat err %v)", err)
	}
	if got := engines[0].Metrics().Counter("migrations_out_total").Value(); got != 1 {
		t.Errorf("source migrations_out_total = %d, want 1", got)
	}
	c1 := migDialRetry(t, client.Config{Placement: svc.Addr(), Doc: doc, Logf: t.Logf})
	defer c1.Close()
	if err := c1.WaitServerSeq(ctx, uint64(len(text))); err != nil {
		t.Fatal(err)
	}
	if got := c1.Text(); got != text {
		t.Fatalf("reader sees %q, want %q", got, text)
	}
}

// TestMigrationTokenGate: shards configured with a migration token refuse
// placement-plane frames that do not carry it — before freezing or exporting
// anything — while a service holding the token drives the same migration
// through.
func TestMigrationTokenGate(t *testing.T) {
	t.Cleanup(migLeakCheck(t))
	const (
		doc   = "mig-token"
		token = "tok-s3cret"
	)
	hist := &core.History{}
	rec := &core.LockedRecorder{R: hist}
	mk := func(id string) *server.Engine {
		eng := server.New(server.Config{Addr: "127.0.0.1:0", ShardID: id, Recorder: rec, MigrationToken: token, Logf: t.Logf})
		if err := eng.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = eng.Shutdown(ctx)
		})
		return eng
	}
	engines := []*server.Engine{mk("s0"), mk("s1")}
	tbl := wire.Table{Version: 1, VNodes: 16, Shards: []wire.Shard{
		{ID: "s0", Addrs: []string{engines[0].Addr()}},
		{ID: "s1", Addrs: []string{engines[1].Addr()}},
	}}
	mkSvc := func(tok string) *placement.Service {
		svc, err := placement.NewService(placement.Config{Addr: "127.0.0.1:0", Table: tbl, MigrationToken: tok, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(svc.Close)
		return svc
	}
	rogue, good := mkSvc(""), mkSvc(token)

	c := migDialRetry(t, client.Config{Placement: good.Addr(), Doc: doc, Recorder: rec,
		MinBackoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond, Logf: t.Logf})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	typeText(t, c, "gatekeep")
	if err := c.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	waitHosted(t, engines, doc)

	// The tokenless service is refused with an explicit nack, nothing is
	// frozen or transferred, and the reject is counted.
	err := rogue.MigrateTo(doc, otherShard(rogue, doc))
	if err == nil || !strings.Contains(err.Error(), "migration token mismatch") {
		t.Fatalf("tokenless migrate error = %v, want token mismatch", err)
	}
	var rejects int64
	for _, eng := range engines {
		rejects += eng.Metrics().Counter("migration_auth_rejects_total").Value()
	}
	if rejects < 1 {
		t.Errorf("migration_auth_rejects_total = %d, want >= 1", rejects)
	}
	// The document is untouched: the same client keeps writing.
	typeText(t, c, "-still")
	if err := c.Sync(ctx); err != nil {
		t.Fatalf("doc unusable after refused migration: %v", err)
	}

	// The tokened service drives the migration (Migrate to the source, the
	// source's MigState to the target — both shards check the token).
	if err := good.MigrateTo(doc, otherShard(good, doc)); err != nil {
		t.Fatalf("tokened migrate: %v", err)
	}
	typeText(t, c, "-open")
	total := len("gatekeep") + len("-still") + len("-open")
	drainAndCheck(t, []*client.Client{c}, engines, doc, total, hist)
	var out int64
	for _, eng := range engines {
		out += eng.Metrics().Counter("migrations_out_total").Value()
	}
	if out != 1 {
		t.Errorf("migrations_out_total across shards = %d, want 1", out)
	}
}

// TestStaticClientFollowsMoved: a client configured with a fixed address (no
// placement service) is cut with a Moved hint mid-session; it must adopt the
// hint's addresses as its dial list and resume on the target shard.
func TestStaticClientFollowsMoved(t *testing.T) {
	t.Cleanup(migLeakCheck(t))
	const doc = "mig-static"
	hist := &core.History{}
	rec := &core.LockedRecorder{R: hist}
	engines := []*server.Engine{startShardRec(t, "s0", rec), startShardRec(t, "s1", rec)}
	tbl := wire.Table{Version: 1, VNodes: 16, Shards: []wire.Shard{
		{ID: "s0", Addrs: []string{engines[0].Addr()}},
		{ID: "s1", Addrs: []string{engines[1].Addr()}},
	}}
	svc, err := placement.NewService(placement.Config{Addr: "127.0.0.1:0", Table: tbl, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)

	// Dial the doc's ring home directly, placement-blind.
	home := 0
	if svc.Lookup(doc).ID == "s1" {
		home = 1
	}
	c, err := client.Dial(client.Config{Addr: engines[home].Addr(), Doc: doc, Recorder: rec,
		MinBackoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	typeText(t, c, "before")
	if err := c.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	if err := svc.MigrateTo(doc, otherShard(svc, doc)); err != nil {
		t.Fatal(err)
	}

	// The cut carried the target's address; the redial loop must land there
	// and resume the transferred session (local-first edits never block).
	typeText(t, c, "-after")
	total := len("before") + len("-after")
	drainAndCheck(t, []*client.Client{c}, engines, doc, total, hist)
	st, ok := engines[1-home].DocState(doc)
	if !ok || st.Seq != uint64(total) {
		t.Fatalf("target shard state after static-client resume: hosted=%v seq=%d, want seq %d", ok, st.Seq, total)
	}
}

// TestStaticClientMovedWithoutAddrsFailsFast: a Moved hint with no addresses
// is unactionable for a client without a placement service. The client must
// fail terminally instead of redialing the retired shard forever.
func TestStaticClientMovedWithoutAddrsFailsFast(t *testing.T) {
	const doc = "mig-noaddrs"
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				_ = nc.SetDeadline(time.Now().Add(5 * time.Second))
				st := wire.NewStream(nc, 0)
				if _, err := st.Read(); err != nil {
					return
				}
				_ = st.Write(&wire.Frame{Type: wire.TMoved, Moved: &wire.Moved{Doc: doc, Shard: "s9"}})
			}(nc)
		}
	}()

	_, err = client.Dial(client.Config{Addr: ln.Addr().String(), Doc: doc,
		MinBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Logf: t.Logf})
	if err == nil {
		t.Fatal("dial succeeded against a shard that only serves addr-less Moved hints")
	}
	if !strings.Contains(err.Error(), "no placement service") {
		t.Fatalf("error = %v, want terminal no-placement-route failure", err)
	}
}
