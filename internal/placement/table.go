// Package placement is the cluster layer that maps documents onto jupiterd
// shard processes: a consistent-hash routing table owned by a small
// placement service (cmd/jupiterplace), served to clients over the wire
// layer's route/routes frames, and a migration driver that moves a live
// document between shards through the shards' freeze/transfer protocol.
//
// The table is deliberately tiny — a version, a shard list, a virtual-node
// count, and per-document overrides recording completed migrations — so
// every client can hold the whole thing and route locally. Lookup is
// overrides first, then the ring, so a migrated document routes to its new
// home without moving any other document (the point of consistent hashing).
package placement

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"

	"jupiter/internal/wire"
)

// Ring is an immutable consistent-hash lookup structure built from a
// routing table. Each shard contributes VNodes points on a 64-bit ring
// (FNV-1a of "id#k"); a document hashes to a point and routes to the next
// shard point clockwise. Build a new Ring after any table change.
type Ring struct {
	table     wire.Table
	points    []ringPoint // sorted by hash
	byID      map[string]int
	overrides map[string]string
}

type ringPoint struct {
	hash  uint64
	shard int // index into table.Shards
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. Raw FNV-1a maps strings that differ
// only in a trailing counter ("s0#1", "s0#2", ...) to near-identical
// values, which clusters a shard's virtual nodes into one arc of the ring
// and ruins the balance; the finalizer's avalanche spreads them uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing validates the table (same rules the wire decoder enforces) and
// builds the lookup structure.
func NewRing(t wire.Table) (*Ring, error) {
	if err := wire.ValidateTable(&t); err != nil {
		return nil, err
	}
	r := &Ring{
		table:     t,
		points:    make([]ringPoint, 0, len(t.Shards)*t.VNodes),
		byID:      make(map[string]int, len(t.Shards)),
		overrides: make(map[string]string, len(t.Overrides)),
	}
	for i := range t.Shards {
		r.byID[t.Shards[i].ID] = i
		for v := 0; v < t.VNodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(t.Shards[i].ID + "#" + strconv.Itoa(v)),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Ties broken by shard id so the ring is deterministic across hosts.
		return t.Shards[r.points[a].shard].ID < t.Shards[r.points[b].shard].ID
	})
	for _, o := range t.Overrides {
		r.overrides[o.Doc] = o.Shard
	}
	return r, nil
}

// Lookup returns the shard owning doc: its override if migrated, otherwise
// the first ring point at or after the document's hash.
func (r *Ring) Lookup(doc string) wire.Shard {
	if id, ok := r.overrides[doc]; ok {
		return r.table.Shards[r.byID[id]]
	}
	h := hash64(doc)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.table.Shards[r.points[i].shard]
}

// Version returns the table version the ring was built from.
func (r *Ring) Version() uint64 { return r.table.Version }

// Table returns a deep copy of the underlying table, safe for the caller
// to modify (the service bumps the version and adds overrides on it).
func (r *Ring) Table() wire.Table {
	t := r.table
	t.Shards = append([]wire.Shard(nil), r.table.Shards...)
	for i := range t.Shards {
		t.Shards[i].Addrs = append([]string(nil), t.Shards[i].Addrs...)
	}
	t.Overrides = append([]wire.Override(nil), r.table.Overrides...)
	return t
}

// Shard returns the shard with the given id.
func (r *Ring) Shard(id string) (wire.Shard, error) {
	i, ok := r.byID[id]
	if !ok {
		return wire.Shard{}, fmt.Errorf("placement: unknown shard %q", id)
	}
	return r.table.Shards[i], nil
}
