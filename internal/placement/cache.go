package placement

import (
	"fmt"
	"net"
	"sync"
	"time"

	"jupiter/internal/wire"
)

// Cache is a client's view of the routing table: fetched from the placement
// service on first lookup, then served locally until invalidated. A client
// invalidates when a shard tells it the table is stale (a wrong-shard
// reject) and applies Moved hints as local overrides without a refetch —
// the hint carries the new home's addresses, so the client can reconnect
// immediately even if the placement service is briefly unreachable.
type Cache struct {
	addr     string
	maxFrame int
	timeout  time.Duration

	mu        sync.Mutex
	ring      *Ring
	overrides map[string]wire.Shard // Moved hints observed by this client
}

// NewCache creates a cache fetching from the placement service at addr.
func NewCache(addr string) *Cache {
	return &Cache{addr: addr, timeout: 5 * time.Second, overrides: make(map[string]wire.Shard)}
}

// Lookup routes a document, fetching the table on first use. Local Moved
// overrides win over the fetched table (they are strictly newer: a shard
// issued them after the table was built).
func (c *Cache) Lookup(doc string) (wire.Shard, error) {
	c.mu.Lock()
	if sh, ok := c.overrides[doc]; ok {
		c.mu.Unlock()
		return sh, nil
	}
	ring := c.ring
	c.mu.Unlock()
	if ring == nil {
		var err error
		ring, err = c.fetch(doc)
		if err != nil {
			return wire.Shard{}, err
		}
	}
	return ring.Lookup(doc), nil
}

// Invalidate drops the cached table (and any local overrides — a fresh
// table subsumes them), forcing a refetch on the next lookup.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	c.ring = nil
	c.overrides = make(map[string]wire.Shard)
	c.mu.Unlock()
}

// ApplyMoved records a Moved hint as a local override. With addresses the
// override is complete; without, it resolves against the cached table's
// shard list (and is dropped if the shard is unknown — the next lookup
// refetches).
func (c *Cache) ApplyMoved(mv wire.Moved) {
	sh := wire.Shard{ID: mv.Shard, Addrs: mv.Addrs}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(sh.Addrs) == 0 {
		if c.ring == nil {
			return
		}
		known, err := c.ring.Shard(mv.Shard)
		if err != nil {
			c.ring = nil // table too stale to resolve the hint
			return
		}
		sh.Addrs = known.Addrs
	}
	c.overrides[mv.Doc] = sh
}

// Shard resolves a shard id against the table, fetching it on first use.
func (c *Cache) Shard(id string) (wire.Shard, error) {
	c.mu.Lock()
	ring := c.ring
	c.mu.Unlock()
	if ring == nil {
		var err error
		if ring, err = c.fetch(""); err != nil {
			return wire.Shard{}, err
		}
	}
	return ring.Shard(id)
}

// Version reports the cached table version (0 when nothing is cached).
func (c *Cache) Version() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ring == nil {
		return 0
	}
	return c.ring.Version()
}

// fetch retrieves the table from the placement service and installs it.
func (c *Cache) fetch(doc string) (*Ring, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, fmt.Errorf("placement: fetch table: %w", err)
	}
	defer nc.Close()
	_ = nc.SetDeadline(time.Now().Add(c.timeout))
	st := wire.NewStream(nc, c.maxFrame)
	c.mu.Lock()
	var ver uint64
	if c.ring != nil {
		ver = c.ring.Version()
	}
	c.mu.Unlock()
	if err := st.Write(&wire.Frame{Type: wire.TRoute, Route: &wire.Route{Doc: doc, Version: ver}}); err != nil {
		return nil, fmt.Errorf("placement: fetch table: %w", err)
	}
	f, err := st.Read()
	if err != nil {
		return nil, fmt.Errorf("placement: fetch table: %w", err)
	}
	if f.Type != wire.TRoutes {
		return nil, fmt.Errorf("placement: fetch table: unexpected %s frame", f.Type)
	}
	ring, err := NewRing(f.Routes.Table)
	if err != nil {
		return nil, fmt.Errorf("placement: fetch table: %w", err)
	}
	c.mu.Lock()
	// Keep the newest table; drop overrides the new table already records.
	if c.ring == nil || ring.Version() > c.ring.Version() {
		c.ring = ring
		for d := range c.overrides {
			if _, ok := ring.overrides[d]; ok {
				delete(c.overrides, d)
			}
		}
	}
	ring = c.ring
	c.mu.Unlock()
	return ring, nil
}
