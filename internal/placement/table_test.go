package placement

import (
	"fmt"
	"testing"

	"jupiter/internal/wire"
)

func testTable(n int) wire.Table {
	t := wire.Table{Version: 1, VNodes: 64}
	for i := 0; i < n; i++ {
		t.Shards = append(t.Shards, wire.Shard{
			ID:    fmt.Sprintf("s%d", i),
			Addrs: []string{fmt.Sprintf("127.0.0.1:%d", 9100+i*100)},
		})
	}
	return t
}

// TestRingDeterministic: the same table yields the same routing on every
// build — clients and the service must agree without coordination.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(testTable(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(testTable(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		doc := fmt.Sprintf("doc-%d", i)
		if a.Lookup(doc).ID != b.Lookup(doc).ID {
			t.Fatalf("doc %q routes differently across identical rings", doc)
		}
	}
}

// TestRingBalance: 4 shards x 64 vnodes spread documents within a loose
// factor of fair share.
func TestRingBalance(t *testing.T) {
	r, err := NewRing(testTable(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const docs = 10000
	for i := 0; i < docs; i++ {
		counts[r.Lookup(fmt.Sprintf("doc-%d", i)).ID]++
	}
	if len(counts) != 4 {
		t.Fatalf("only %d shards received documents: %v", len(counts), counts)
	}
	for id, n := range counts {
		if n < docs/4/2 || n > docs/4*2 {
			t.Errorf("shard %s holds %d of %d docs — outside [1/2, 2]x fair share", id, n, docs)
		}
	}
}

// TestRingStability: adding a shard moves only documents that now route to
// it; no document shuffles between surviving shards.
func TestRingStability(t *testing.T) {
	before, err := NewRing(testTable(3))
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(testTable(4))
	if err != nil {
		t.Fatal(err)
	}
	moved, total := 0, 5000
	for i := 0; i < total; i++ {
		doc := fmt.Sprintf("doc-%d", i)
		a, b := before.Lookup(doc).ID, after.Lookup(doc).ID
		if a == b {
			continue
		}
		moved++
		if b != "s3" {
			t.Fatalf("doc %q moved %s -> %s, not to the new shard", doc, a, b)
		}
	}
	if moved == 0 || moved > total/2 {
		t.Errorf("adding 1 of 4 shards moved %d of %d docs", moved, total)
	}
}

// TestRingOverride: overrides reroute exactly the named document.
func TestRingOverride(t *testing.T) {
	tbl := testTable(2)
	base, err := NewRing(tbl)
	if err != nil {
		t.Fatal(err)
	}
	// Find a doc natively on s0 and pin it to s1.
	var doc string
	for i := 0; ; i++ {
		doc = fmt.Sprintf("doc-%d", i)
		if base.Lookup(doc).ID == "s0" {
			break
		}
	}
	tbl.Overrides = []wire.Override{{Doc: doc, Shard: "s1"}}
	tbl.Version = 2
	r, err := NewRing(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Lookup(doc).ID; got != "s1" {
		t.Errorf("overridden doc routes to %s, want s1", got)
	}
	if got := r.Lookup(doc + "-sibling"); got.ID != base.Lookup(doc+"-sibling").ID {
		t.Error("override moved an unrelated document")
	}
	if r.Version() != 2 {
		t.Errorf("version = %d, want 2", r.Version())
	}
}

// TestRingRejectsBadTables mirrors the wire-layer validation.
func TestRingRejectsBadTables(t *testing.T) {
	bad := []wire.Table{
		{Version: 1, VNodes: 64},                                                             // no shards
		{Version: 1, VNodes: 0, Shards: testTable(1).Shards},                                 // no vnodes
		{Version: 1, VNodes: 4, Shards: append(testTable(1).Shards, testTable(1).Shards...)}, // dup id
		{Version: 1, VNodes: 4, Shards: []wire.Shard{{ID: "s0"}}},                            // shard without addrs
		{Version: 1, VNodes: 4, Shards: testTable(1).Shards,
			Overrides: []wire.Override{{Doc: "d", Shard: "ghost"}}}, // override to unknown shard
	}
	for i, tbl := range bad {
		if _, err := NewRing(tbl); err == nil {
			t.Errorf("case %d: NewRing accepted invalid table", i)
		}
	}
}

// TestTableDeepCopy: mutating a returned table does not corrupt the ring.
func TestTableDeepCopy(t *testing.T) {
	r, err := NewRing(testTable(2))
	if err != nil {
		t.Fatal(err)
	}
	cp := r.Table()
	cp.Shards[0].ID = "mutated"
	cp.Shards[0].Addrs[0] = "mutated"
	if sh, err := r.Shard("s0"); err != nil || sh.Addrs[0] == "mutated" {
		t.Error("Table() shares memory with the ring")
	}
}
