package placement

import (
	"context"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"jupiter/internal/server"
	"jupiter/internal/wire"
)

func startService(t *testing.T, tbl wire.Table) *Service {
	t.Helper()
	s, err := NewService(Config{Addr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", Table: tbl, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestServiceRouteAndCache: a cache fetches the table over the wire, routes
// locally, and agrees with the service's own lookup.
func TestServiceRouteAndCache(t *testing.T) {
	s := startService(t, testTable(3))
	c := NewCache(s.Addr())
	for _, doc := range []string{"alpha", "beta", "gamma"} {
		sh, err := c.Lookup(doc)
		if err != nil {
			t.Fatal(err)
		}
		if want := s.Lookup(doc); sh.ID != want.ID {
			t.Errorf("doc %q: cache says %s, service says %s", doc, sh.ID, want.ID)
		}
	}
	if v := c.Version(); v != 1 {
		t.Errorf("cached version = %d, want 1", v)
	}
	if n := s.Metrics().Counter("route_requests_total").Value(); n != 1 {
		t.Errorf("route_requests_total = %d, want 1 (cache fetches once)", n)
	}
	counts := s.DocCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 1 {
		t.Errorf("DocCounts total = %d, want 1 (only the fetch-triggering doc observed)", total)
	}
}

// TestCacheMovedOverride: a Moved hint wins over the fetched table, and
// Invalidate clears it.
func TestCacheMovedOverride(t *testing.T) {
	s := startService(t, testTable(2))
	c := NewCache(s.Addr())
	if _, err := c.Lookup("notes"); err != nil {
		t.Fatal(err)
	}
	c.ApplyMoved(wire.Moved{Doc: "notes", Shard: "s1", Addrs: []string{"127.0.0.1:9999"}})
	sh, err := c.Lookup("notes")
	if err != nil {
		t.Fatal(err)
	}
	if sh.ID != "s1" || sh.Addrs[0] != "127.0.0.1:9999" {
		t.Errorf("override not applied: %+v", sh)
	}
	c.Invalidate()
	sh, err = c.Lookup("notes")
	if err != nil {
		t.Fatal(err)
	}
	if want := s.Lookup("notes"); sh.ID != want.ID {
		t.Errorf("after invalidate, cache says %s, service says %s", sh.ID, want.ID)
	}
}

// startShard brings up a standalone engine posing as one shard.
func startShard(t *testing.T, id string) *server.Engine {
	t.Helper()
	e := server.New(server.Config{Addr: "127.0.0.1:0", ShardID: id, Logf: t.Logf})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = e.Shutdown(ctx)
	})
	return e
}

// TestMigrateUnhostedDoc: migrating a document the source never hosted
// succeeds (the target creates it on first join) and records an override.
func TestMigrateUnhostedDoc(t *testing.T) {
	src, dst := startShard(t, "s0"), startShard(t, "s1")
	tbl := wire.Table{Version: 1, VNodes: 64, Shards: []wire.Shard{
		{ID: "s0", Addrs: []string{src.Addr()}},
		{ID: "s1", Addrs: []string{dst.Addr()}},
	}}
	s := startService(t, tbl)

	// Find a doc the ring places on s0, then move it to s1.
	var doc string
	for i := 0; ; i++ {
		doc = "doc-" + strings.Repeat("x", i%3) + "-" + string(rune('a'+i%26))
		if s.Lookup(doc).ID == "s0" {
			break
		}
	}
	if err := s.MigrateTo(doc, "s1"); err != nil {
		t.Fatal(err)
	}
	if got := s.Lookup(doc).ID; got != "s1" {
		t.Errorf("after migration, doc routes to %s, want s1", got)
	}
	if v := s.Table().Version; v != 2 {
		t.Errorf("table version = %d, want 2", v)
	}
	if n := s.Metrics().Counter("migrations_total").Value(); n != 1 {
		t.Errorf("migrations_total = %d, want 1", n)
	}
	// Migrating to where it already lives is a no-op.
	if err := s.MigrateTo(doc, "s1"); err != nil {
		t.Fatal(err)
	}
	if v := s.Table().Version; v != 2 {
		t.Errorf("no-op migration bumped version to %d", v)
	}
	// Unknown target shard is an error.
	if err := s.MigrateTo(doc, "ghost"); err == nil {
		t.Error("MigrateTo accepted an unknown shard")
	}
}

// TestServiceHTTP: /table reports the table and /migrate drives a move.
func TestServiceHTTP(t *testing.T) {
	src, dst := startShard(t, "s0"), startShard(t, "s1")
	tbl := wire.Table{Version: 1, VNodes: 64, Shards: []wire.Shard{
		{ID: "s0", Addrs: []string{src.Addr()}},
		{ID: "s1", Addrs: []string{dst.Addr()}},
	}}
	s := startService(t, tbl)

	resp, err := http.Get("http://" + s.HTTPAddr() + "/table")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/table status %d", resp.StatusCode)
	}

	var doc string
	for i := 0; ; i++ {
		doc = "http-doc-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if s.Lookup(doc).ID == "s0" {
			break
		}
	}
	resp, err = http.PostForm("http://"+s.HTTPAddr()+"/migrate", url.Values{"doc": {doc}, "to": {"s1"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/migrate status %d", resp.StatusCode)
	}
	if got := s.Lookup(doc).ID; got != "s1" {
		t.Errorf("after HTTP migrate, doc routes to %s, want s1", got)
	}
	// GET on /migrate is refused.
	resp, err = http.Get("http://" + s.HTTPAddr() + "/migrate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /migrate status %d, want 405", resp.StatusCode)
	}
}
