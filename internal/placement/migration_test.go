package placement_test

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jupiter/internal/chaosproxy"
	"jupiter/internal/client"
	"jupiter/internal/core"
	"jupiter/internal/placement"
	"jupiter/internal/server"
	"jupiter/internal/spec"
	"jupiter/internal/wire"
)

// Live-migration acceptance: a document moves between shards while clients
// are actively writing, and the combined system must behave exactly like one
// server that briefly restarted — no operation lost, none applied twice, all
// replicas convergent, and the recorded history satisfying the weak list
// specification. The chaos variant re-runs the property under seeded frame
// drops, delays, partitions, and hard resets injected on every path: client
// traffic, the placement service's migrate commands, and the shard-to-shard
// state transfer all ride chaosproxy-fronted addresses.

// migLeakCheck returns a cleanup that fails the test if the goroutine count
// has not returned to (about) its baseline.
func migLeakCheck(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for time.Now().Before(deadline) {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 64<<10)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d running, baseline %d\n%s", n, base, buf)
	}
}

// migDialRetry dials with retries: a migration freeze window or a chaos
// fault can land mid-handshake, which a real client would also just retry.
func migDialRetry(t *testing.T, cfg client.Config) *client.Client {
	t.Helper()
	var lastErr error
	for attempt := 0; attempt < 100; attempt++ {
		c, err := client.Dial(cfg)
		if err == nil {
			return c
		}
		lastErr = err
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("dial: %v", lastErr)
	return nil
}

// migrationChaosSchedules resolves the seeded-schedule count: the
// MIGRATION_CHAOS_SCHEDULES env var (Makefile and nightly pin it), else 4
// (the PR-path floor), else 2 in -short mode.
func migrationChaosSchedules() int {
	if s := os.Getenv("MIGRATION_CHAOS_SCHEDULES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	if testing.Short() {
		return 2
	}
	return 4
}

// startShardRec starts a standalone shard engine with the given id wired to
// a shared history recorder.
func startShardRec(t *testing.T, id string, rec core.Recorder) *server.Engine {
	t.Helper()
	eng := server.New(server.Config{Addr: "127.0.0.1:0", ShardID: id, Recorder: rec, Logf: t.Logf})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := eng.Shutdown(ctx); err != nil {
			t.Errorf("shard %s shutdown: %v", id, err)
		}
	})
	return eng
}

// seededEdits runs nClients concurrent seeded editors of opsEach ops each
// and returns once all editors finished.
func seededEdits(t *testing.T, clients []*client.Client, opsEach int, seed int64) {
	t.Helper()
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(i)))
			for j := 0; j < opsEach; j++ {
				doc := c.Document()
				if len(doc) > 0 && rng.Intn(4) == 0 {
					if err := c.Delete(rng.Intn(len(doc))); err != nil {
						t.Errorf("client %d delete: %v", i, err)
						return
					}
				} else {
					if err := c.Insert(rune('a'+(i*opsEach+j)%26), rng.Intn(len(doc)+1)); err != nil {
						t.Errorf("client %d insert: %v", i, err)
						return
					}
				}
				time.Sleep(500 * time.Microsecond)
			}
		}(i, c)
	}
	wg.Wait()
}

// drainAndCheck runs the full post-edit barrier: every client syncs, waits
// for the global sequence to reach total, all texts must agree with each
// other and with whichever engine hosts the doc, exactly `total` ops were
// applied across the cluster, and the recorded history passes the weak list
// spec and convergence checks.
func drainAndCheck(t *testing.T, clients []*client.Client, engines []*server.Engine, doc string, total int, hist *core.History) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, c := range clients {
		if err := c.Sync(ctx); err != nil {
			t.Fatalf("client %d sync: %v", i, err)
		}
	}
	for i, c := range clients {
		if err := c.WaitServerSeq(ctx, uint64(total)); err != nil {
			t.Fatalf("client %d wait seq %d (at %d): %v", i, total, c.ServerSeq(), err)
		}
	}
	want := clients[0].Text()
	for i, c := range clients {
		if got := c.Text(); got != want {
			t.Fatalf("client %d diverged:\n c0: %q\n c%d: %q", i, want, i, got)
		}
	}
	// The doc's authoritative host must agree. A failed transfer can leave a
	// stale idle copy on the other shard (nothing routes to it), so require
	// at least one engine at full seq — and every engine at full seq agrees.
	hosts := 0
	var applied int64
	for i, eng := range engines {
		applied += eng.Metrics().Counter("ops_applied").Value()
		st, ok := eng.DocState(doc)
		if !ok {
			continue
		}
		if st.Seq != uint64(total) {
			continue // stale retired copy
		}
		hosts++
		if st.Text != want {
			t.Fatalf("engine %d diverged:\n server: %q\n client: %q", i, st.Text, want)
		}
	}
	if hosts < 1 {
		t.Fatalf("no engine hosts %q at seq %d", doc, total)
	}
	if applied != int64(total) {
		t.Fatalf("ops_applied across shards = %d, want exactly %d (lost or duplicated ops)", applied, total)
	}
	for _, c := range clients {
		c.Read()
	}
	if err := spec.CheckWeak(hist); err != nil {
		t.Fatalf("weak list spec violated: %v", err)
	}
	if err := spec.CheckConvergence(hist); err != nil {
		t.Fatalf("convergence violated: %v", err)
	}
}

// waitHosted blocks until some engine hosts the doc (clients joined).
func waitHosted(t *testing.T, engines []*server.Engine, doc string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, eng := range engines {
			if _, ok := eng.DocState(doc); ok {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("doc %q never hosted", doc)
}

// otherShard names the 2-shard peer the doc is currently NOT routed to.
func otherShard(svc *placement.Service, doc string) string {
	if svc.Lookup(doc).ID == "s0" {
		return "s1"
	}
	return "s0"
}

// TestMigrationUnderActiveWriters is the deterministic acceptance story: a
// document is migrated s→t and back t→s while three clients keep writing.
// Each migration freezes the doc inside the apply loop, transfers the blob,
// and cuts the attached clients with a Moved hint; the clients reroute
// through their placement cache and resume. The drain barrier proves
// exactly-once delivery and spec compliance.
func TestMigrationUnderActiveWriters(t *testing.T) {
	t.Cleanup(migLeakCheck(t))
	const (
		nClients = 3
		opsEach  = 20
		doc      = "mig-live"
	)
	hist := &core.History{}
	rec := &core.LockedRecorder{R: hist}
	engines := []*server.Engine{startShardRec(t, "s0", rec), startShardRec(t, "s1", rec)}

	tbl := wire.Table{Version: 1, VNodes: 16, Shards: []wire.Shard{
		{ID: "s0", Addrs: []string{engines[0].Addr()}},
		{ID: "s1", Addrs: []string{engines[1].Addr()}},
	}}
	svc, err := placement.NewService(placement.Config{Addr: "127.0.0.1:0", Table: tbl, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)

	clients := make([]*client.Client, nClients)
	for i := range clients {
		clients[i] = migDialRetry(t, client.Config{
			Placement:  svc.Addr(),
			Doc:        doc,
			Seed:       int64(100 + i),
			MinBackoff: 2 * time.Millisecond,
			MaxBackoff: 50 * time.Millisecond,
			Recorder:   rec,
			Logf:       t.Logf,
		})
	}
	defer func() {
		for _, c := range clients {
			_ = c.Close()
		}
	}()

	// Migrate there and back mid-edit, with writers running the whole time.
	migDone := make(chan struct{})
	go func() {
		defer close(migDone)
		waitHosted(t, engines, doc)
		for hop := 0; hop < 2; hop++ {
			if err := svc.MigrateTo(doc, otherShard(svc, doc)); err != nil {
				t.Errorf("migration hop %d: %v", hop, err)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	seededEdits(t, clients, opsEach, 42)
	<-migDone

	drainAndCheck(t, clients, engines, doc, nClients*opsEach, hist)

	var out, in int64
	for _, eng := range engines {
		out += eng.Metrics().Counter("migrations_out_total").Value()
		in += eng.Metrics().Counter("migrations_in_total").Value()
	}
	if out != 2 || in != 2 {
		t.Errorf("migrations out=%d in=%d, want 2/2", out, in)
	}
	if got := svc.Metrics().Counter("migrations_total").Value(); got != 2 {
		t.Errorf("service migrations_total = %d, want 2", got)
	}
	if v := svc.Table().Version; v != 3 {
		t.Errorf("table version = %d, want 3 (1 + two migrations)", v)
	}
}

// TestWrongShardReject: a hello naming another shard is refused with the
// wrong-shard code before any doc state is touched.
func TestWrongShardReject(t *testing.T) {
	eng := server.New(server.Config{Addr: "127.0.0.1:0", ShardID: "s0"})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	}()

	nc, err := net.Dial("tcp", eng.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	_ = nc.SetDeadline(time.Now().Add(5 * time.Second))
	st := wire.NewStream(nc, 0)
	if err := st.Write(&wire.Frame{Type: wire.THello, Hello: &wire.Hello{Doc: "d", Shard: "s9"}}); err != nil {
		t.Fatal(err)
	}
	f, err := st.Read()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.TError || f.Error == nil || f.Error.Code != wire.CodeWrongShard {
		t.Fatalf("got %+v, want %s error", f, wire.CodeWrongShard)
	}
	if got := eng.Metrics().Counter("wrong_shard_rejects_total").Value(); got != 1 {
		t.Errorf("wrong_shard_rejects_total = %d, want 1", got)
	}
}

// runMigrationChaosSchedule drives one seeded migration-under-chaos
// schedule: both shards sit behind chaos proxies whose addresses ARE the
// routing-table addresses, so client traffic, migrate commands, and the
// state transfer all cross faulty links. A driver goroutine ping-pongs the
// doc between shards for the whole edit phase, tolerating failed attempts
// (failure must leave the source authoritative). After Heal the usual
// convergence + spec barrier must hold, with exactly-once application.
func runMigrationChaosSchedule(t *testing.T, seed int64) (migrated int64, faults int64) {
	const (
		nClients = 3
		opsEach  = 12
		doc      = "mig-chaos"
	)
	hist := &core.History{}
	rec := &core.LockedRecorder{R: hist}
	engines := []*server.Engine{startShardRec(t, "s0", rec), startShardRec(t, "s1", rec)}
	proxies := []*chaosproxy.Proxy{
		chaosproxy.NewForTest(t, engines[0].Addr(), chaosproxy.Random(seed*2, nClients+2)),
		chaosproxy.NewForTest(t, engines[1].Addr(), chaosproxy.Random(seed*2+1, nClients+2)),
	}

	tbl := wire.Table{Version: 1, VNodes: 16, Shards: []wire.Shard{
		{ID: "s0", Addrs: []string{proxies[0].Addr()}},
		{ID: "s1", Addrs: []string{proxies[1].Addr()}},
	}}
	svc, err := placement.NewService(placement.Config{Addr: "127.0.0.1:0", Table: tbl, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)

	clients := make([]*client.Client, nClients)
	for i := range clients {
		clients[i] = migDialRetry(t, client.Config{
			Placement:  svc.Addr(),
			Doc:        doc,
			Seed:       seed*100 + int64(i+1),
			MinBackoff: 2 * time.Millisecond,
			MaxBackoff: 50 * time.Millisecond,
			Recorder:   rec,
		})
	}
	defer func() {
		for _, c := range clients {
			_ = c.Close()
		}
	}()

	// Migration driver: keep bouncing the doc while editors run. Attempts
	// may fail under chaos — the property is that failures are harmless, not
	// that every attempt lands.
	var migOK atomic.Int64
	editDone := make(chan struct{})
	var driverWG sync.WaitGroup
	driverWG.Add(1)
	go func() {
		defer driverWG.Done()
		for {
			select {
			case <-editDone:
				return
			default:
			}
			if err := svc.MigrateTo(doc, otherShard(svc, doc)); err == nil {
				migOK.Add(1)
			} else {
				t.Logf("seed %d: migration attempt failed (tolerated): %v", seed, err)
			}
			time.Sleep(8 * time.Millisecond)
		}
	}()

	seededEdits(t, clients, opsEach, seed)
	close(editDone)
	driverWG.Wait()

	// Injection ends; every link is cut once and recovery must converge
	// through the now-transparent proxies.
	for _, p := range proxies {
		p.Heal()
	}
	// The suite must witness at least one completed migration per schedule:
	// if chaos defeated every mid-edit attempt, force one on the healed
	// network before the barrier.
	if migOK.Load() == 0 {
		if err := svc.MigrateTo(doc, otherShard(svc, doc)); err != nil {
			t.Fatalf("seed %d: post-heal migration failed: %v", seed, err)
		}
		migOK.Add(1)
	}

	drainAndCheck(t, clients, engines, doc, nClients*opsEach, hist)

	for _, p := range proxies {
		st := p.Stats()
		faults += st.Dropped + st.Resets + st.MidFrame + st.Partitions
	}
	return migOK.Load(), faults
}

// TestMigrationChaosConvergence is the seeded property suite (the
// MIGRATION_CHAOS_SCHEDULES env var scales it from the 4-schedule PR floor
// to the 50-schedule nightly sweep): every schedule must converge with
// exactly-once delivery and a spec-clean history, and across the suite
// migrations and injected faults must actually have fired. (The fault
// floor counts drops, resets, mid-frame cuts, and partitions together:
// scheduled resets trigger on per-link frame counts, and with the doc
// ping-ponging every few milliseconds a link can be cut by a moved
// redirect before reaching any trigger — which reset fires is timing,
// but that *some* fault fired is not.)
func TestMigrationChaosConvergence(t *testing.T) {
	t.Cleanup(migLeakCheck(t))
	schedules := migrationChaosSchedules()
	var migrated, faults int64
	for seed := int64(0); seed < int64(schedules); seed++ {
		seed := seed
		ok := t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			m, f := runMigrationChaosSchedule(t, seed)
			migrated += m
			faults += f
		})
		if !ok {
			t.Fatalf("schedule %d failed; stopping the sweep", seed)
		}
	}
	t.Logf("suite: %d schedules, %d migrations completed, %d faults injected", schedules, migrated, faults)
	if migrated < int64(schedules) {
		t.Errorf("only %d migrations across %d schedules (want >= 1 each)", migrated, schedules)
	}
	if faults < 1 {
		t.Error("no faults injected across the suite")
	}
}
