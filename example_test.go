package jupiter_test

import (
	"fmt"

	"jupiter"
)

// The Figure 1 scenario through the public API: two users edit "efecte"
// concurrently and converge on "effect".
func Example() {
	initial := jupiter.FromString("efecte", 100)
	cl, err := jupiter.NewCluster(jupiter.CSS, jupiter.Config{Clients: 2, Initial: initial, Record: true})
	if err != nil {
		panic(err)
	}
	_ = cl.GenerateIns(1, 'f', 1) // user 1: Ins(f, 1)
	_ = cl.GenerateDel(2, 5)      // user 2: Del(e, 5), concurrently
	_ = jupiter.Quiesce(cl)

	doc, _ := jupiter.CheckConverged(cl)
	fmt.Println(jupiter.Render(doc))
	fmt.Println(jupiter.CheckWeak(cl.History()))
	// Output:
	// effect
	// <nil>
}

// Checking a history against the three specifications.
func ExampleCheckStrong() {
	cl, _ := jupiter.NewCluster(jupiter.CSS, jupiter.Config{Clients: 3, Record: true})

	// The Figure 7 counterexample: delete x while inserting around it.
	_ = cl.GenerateIns(1, 'x', 0)
	_ = jupiter.Quiesce(cl)
	_ = cl.GenerateDel(1, 0)
	_ = cl.GenerateIns(2, 'a', 0)
	_ = cl.GenerateIns(3, 'b', 1)
	cl.Read(2) // "ax"
	cl.Read(3) // "xb"
	_ = jupiter.Quiesce(cl)
	for _, c := range cl.Clients() {
		cl.Read(c) // "ba"
	}

	h := cl.History()
	fmt.Println("weak:  ", jupiter.CheckWeak(h))
	_, isViolation := jupiter.AsViolation(jupiter.CheckStrong(h))
	fmt.Println("strong violated:", isViolation)
	// Output:
	// weak:   <nil>
	// strong violated: true
}

// Editing with carets that survive concurrent edits.
func ExampleNewEditorSession() {
	session, _ := jupiter.NewEditorSession(2, nil)
	alice, _ := session.Editor(1)
	bob, _ := session.Editor(2)

	_, _ = alice.TypeString("world")
	_ = session.Sync()

	bob.MoveTo(0) // bob's caret before 'w'
	_, _ = alice.TypeString("!")
	bob2, _ := session.Editor(2)
	_, _ = bob2.TypeString("hello ")
	_ = session.Sync()

	text, _ := session.Converged()
	fmt.Println(text)
	// Output:
	// hello world!
}

// Server-less collaboration on a peer mesh.
func ExampleNewMesh() {
	mesh, _ := jupiter.NewMesh(3, nil, false)
	_ = mesh.GenerateIns(1, 'g', 0)
	_ = mesh.GenerateIns(2, 'o', 0) // concurrent: peer 2 has not seen 'g'
	_ = mesh.Quiesce()

	doc, _ := mesh.CheckConverged()
	fmt.Println(len(doc))
	// Output:
	// 2
}
