module jupiter

go 1.22
