// Counterexample: the two negative results of the paper, reproduced end to
// end.
//
// Part 1 (Figure 7, Theorem 8.1): Jupiter does NOT satisfy the strong list
// specification. A client deletes 'x' while two others insert 'a' before it
// and 'b' after it; the intermediate views "ax" and "xb" together with the
// final "ba" force a cyclic list order — no single total order over {a,x,b}
// explains all three lists.
//
// Part 2 (Figure 8, Example 8.1): an INCORRECT OT protocol (no server
// serialization, naive tie-breaking) diverges outright, violating both
// convergence and the weak list specification. The same checkers that pass
// Jupiter's histories catch it.
package main

import (
	"fmt"
	"log"

	"jupiter"
)

func main() {
	if err := figure7(); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := figure8(); err != nil {
		log.Fatal(err)
	}
}

func figure7() error {
	fmt.Println("=== Figure 7: Jupiter violates the STRONG list specification ===")
	cl, err := jupiter.NewCluster(jupiter.CSS, jupiter.Config{Clients: 3, Record: true})
	if err != nil {
		return err
	}

	// Everyone first agrees the document is "x".
	if err := cl.GenerateIns(1, 'x', 0); err != nil {
		return err
	}
	if err := jupiter.Quiesce(cl); err != nil {
		return err
	}

	// Three concurrent operations.
	if err := cl.GenerateDel(1, 0); err != nil { // c1: delete x
		return err
	}
	if err := cl.GenerateIns(2, 'a', 0); err != nil { // c2: a before x
		return err
	}
	if err := cl.GenerateIns(3, 'b', 1); err != nil { // c3: b after x
		return err
	}

	d2, _ := cl.Document("c2")
	d3, _ := cl.Document("c3")
	fmt.Printf("local views: c2 sees %q, c3 sees %q\n", jupiter.Render(d2), jupiter.Render(d3))
	cl.Read(2)
	cl.Read(3)

	if err := jupiter.Quiesce(cl); err != nil {
		return err
	}
	doc, err := jupiter.CheckConverged(cl)
	if err != nil {
		return err
	}
	fmt.Printf("final (everyone): %q\n", jupiter.Render(doc))
	for _, c := range cl.Clients() {
		cl.Read(c)
	}

	h := cl.History()
	fmt.Printf("convergence: %v\n", passFail(jupiter.CheckConvergence(h)))
	fmt.Printf("weak list:   %v\n", passFail(jupiter.CheckWeak(h)))
	err = jupiter.CheckStrong(h)
	fmt.Printf("strong list: %v\n", passFail(err))
	if v, ok := jupiter.AsViolation(err); ok {
		fmt.Printf("  why: %s\n", v.Reason)
		fmt.Println("  the list order needs (a,x) from \"ax\", (x,b) from \"xb\", (b,a) from \"ba\" — a cycle.")
	}
	return nil
}

func figure8() error {
	fmt.Println("=== Figure 8: an incorrect OT protocol caught by the checkers ===")
	initial := jupiter.FromString("abc", 100)
	cl, err := jupiter.NewCluster(jupiter.Broken, jupiter.Config{Clients: 3, Initial: initial, Record: true})
	if err != nil {
		return err
	}

	// o1 = Ins(x,2) at c1, o2 = Del(b,1) at c2, o3 = Ins(y,1) at c3 —
	// pairwise concurrent on "abc".
	if err := cl.GenerateIns(1, 'x', 2); err != nil {
		return err
	}
	if err := cl.GenerateDel(2, 1); err != nil {
		return err
	}
	if err := cl.GenerateIns(3, 'y', 1); err != nil {
		return err
	}
	// Deliver o3 first so both c1 and c2 transform the later arrivals
	// against it — in different orders, which is the bug.
	if _, err := cl.DeliverToServer(3); err != nil {
		return err
	}
	if _, err := cl.DeliverToClient(1); err != nil {
		return err
	}
	if _, err := cl.DeliverToClient(2); err != nil {
		return err
	}
	if err := jupiter.Quiesce(cl); err != nil {
		return err
	}

	d1, _ := cl.Document("c1")
	d2, _ := cl.Document("c2")
	fmt.Printf("c1 ends with %q, c2 ends with %q — divergence!\n",
		jupiter.Render(d1), jupiter.Render(d2))
	cl.Read(1)
	cl.Read(2)

	h := cl.History()
	fmt.Printf("convergence: %v\n", passFail(jupiter.CheckConvergence(h)))
	err = jupiter.CheckWeak(h)
	fmt.Printf("weak list:   %v\n", passFail(err))
	if v, ok := jupiter.AsViolation(err); ok {
		fmt.Printf("  why: %s\n", v.Reason)
	}
	return nil
}

func passFail(err error) string {
	if err == nil {
		return "PASS"
	}
	return "FAIL"
}
