// P2P: collaborative editing WITHOUT a server — the distributed CSS
// protocol the paper proposes as future work ("extending the CSS protocol
// to a distributed setting, by integrating the compact n-ary ordered
// state-space with a distributed scheme to totally order operations").
//
// Peers form a full mesh. Each operation is broadcast with a Lamport
// timestamp; the timestamp order IS the total order "⇒", and a remote
// operation is applied only once it is STABLE (no earlier-ordered operation
// can still arrive). Local operations still apply instantly — optimistic
// replication survives decentralization.
//
// The example shows the stability mechanics step by step, then runs a
// concurrent goroutine-per-peer session.
package main

import (
	"fmt"
	"log"
	"sort"

	"jupiter"
)

func main() {
	if err := stepByStep(); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := concurrent(); err != nil {
		log.Fatal(err)
	}
}

func stepByStep() error {
	fmt.Println("=== stability, step by step (3 peers, no server) ===")
	mesh, err := jupiter.NewMesh(3, nil, true)
	if err != nil {
		return err
	}

	// Peer 1 types 'h'; the operation reaches peer 2 but peer 3 is silent.
	if err := mesh.GenerateIns(1, 'h', 0); err != nil {
		return err
	}
	if _, err := mesh.Deliver(1, 2); err != nil {
		return err
	}
	p2, _ := mesh.Peer(2)
	fmt.Printf("peer2 received the op but peer3 is silent: doc=%q, queued=%d\n",
		jupiter.Render(p2.Document()), p2.QueueLen())

	// Peer 3 speaks (any message works — here it types too), which lets
	// peer 2 rule out an earlier-timestamped op from peer 3.
	if err := mesh.GenerateIns(3, '!', 0); err != nil {
		return err
	}
	if _, err := mesh.Deliver(3, 2); err != nil {
		return err
	}
	fmt.Printf("after hearing from peer3:                 doc=%q, queued=%d\n",
		jupiter.Render(p2.Document()), p2.QueueLen())

	// Drain the rest of the mesh.
	if err := mesh.Quiesce(); err != nil {
		return err
	}
	doc, err := mesh.CheckConverged()
	if err != nil {
		return err
	}
	fmt.Printf("all three peers converged on %q\n", jupiter.Render(doc))
	return nil
}

func concurrent() error {
	fmt.Println("=== goroutine-per-peer session (5 peers × 20 ops) ===")
	res, err := jupiter.RunMeshAsync(jupiter.MeshAsyncConfig{
		Peers:       5,
		OpsPerPeer:  20,
		Seed:        7,
		DeleteRatio: 0.3,
		Record:      true,
	})
	if err != nil {
		return err
	}
	names := make([]string, 0, len(res.Docs))
	for name := range res.Docs {
		names = append(names, name)
	}
	sort.Strings(names)
	final := jupiter.Render(res.Docs[names[0]])
	for _, name := range names {
		if jupiter.Render(res.Docs[name]) != final {
			return fmt.Errorf("%s diverged", name)
		}
	}
	fmt.Printf("5 peers converged on a %d-character document\n", len(final))
	if err := jupiter.CheckWeak(res.History); err != nil {
		return err
	}
	fmt.Println("weak list specification: PASS")
	states := 0
	for _, s := range res.States {
		states += s
	}
	fmt.Printf("retained state-space metadata: %d states across 5 peers\n", states)
	return nil
}
