// Editor: the adoption-facing layer — carets and selections that survive
// concurrent editing. Two users edit one document; each keeps a caret, and
// the library keeps every caret attached to the text around it while remote
// operations rewrite positions (the same inclusion-transformation idea the
// Jupiter protocol applies to operations, applied to cursor positions).
package main

import (
	"fmt"
	"log"

	"jupiter"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	session, err := jupiter.NewEditorSession(2, nil)
	if err != nil {
		return err
	}
	alice, _ := session.Editor(1)
	bob, _ := session.Editor(2)

	// Alice drafts a sentence and everyone syncs.
	if _, err := alice.TypeString("the protocol works"); err != nil {
		return err
	}
	if err := session.Sync(); err != nil {
		return err
	}
	show := func(when string) {
		fmt.Printf("%-28s alice: %q caret=%d | bob: %q caret=%d\n",
			when, alice.Text(), alice.Caret(), bob.Text(), bob.Caret())
	}
	show("after alice drafts:")

	// Bob puts his caret before "works" (position 13) and starts a word,
	// while Alice concurrently rewrites the beginning.
	bob.MoveTo(13)
	if _, err := bob.TypeString("really "); err != nil {
		return err
	}
	alice.MoveTo(0)
	if _, err := alice.TypeString("Yes, "); err != nil {
		return err
	}
	show("concurrent, before sync:")

	if err := session.Sync(); err != nil {
		return err
	}
	show("after sync:")

	text, err := session.Converged()
	if err != nil {
		return err
	}
	fmt.Printf("\nconverged on %q\n", text)
	fmt.Println("note both carets moved with their surrounding text, not their indices.")

	// Selections transform too: bob selects "really " and deletes it while
	// alice appends.
	if err := bob.Select(18, 25); err != nil {
		return err
	}
	if _, err := bob.DeleteSelection(); err != nil {
		return err
	}
	alice.MoveTo(alice.Len())
	if _, err := alice.Type('!'); err != nil {
		return err
	}
	if err := session.Sync(); err != nil {
		return err
	}
	text, err = session.Converged()
	if err != nil {
		return err
	}
	fmt.Printf("after bob's selection delete + alice's '!': %q\n", text)
	return nil
}
