// Offline: high-latency and disconnected editing — the regime Jupiter was
// designed for ("High-latency, low-bandwidth windowing in the Jupiter
// collaboration system"). One client goes offline and keeps editing; its
// operations queue on the FIFO channel. Meanwhile the connected clients
// keep collaborating through the server. When the offline client
// reconnects, its queued operations are serialized and transformed against
// everything it missed, and every replica converges.
//
// The example also demonstrates the state-space garbage-collection
// extension: after the reconnect storm, the stability frontier advances and
// the spaces shrink back down.
package main

import (
	"fmt"
	"log"

	"jupiter"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cl, err := jupiter.NewCluster(jupiter.CSS, jupiter.Config{Clients: 3, Record: true})
	if err != nil {
		return err
	}

	// Shared starting point: "draft".
	for i, r := range "draft" {
		if err := cl.GenerateIns(1, r, i); err != nil {
			return err
		}
	}
	if err := jupiter.Quiesce(cl); err != nil {
		return err
	}

	// Client 3 goes offline (we simply stop delivering its channels) and
	// types " v2" at the end.
	base, _ := cl.Document("c3")
	off := len(base)
	for i, r := range " v2" {
		if err := cl.GenerateIns(3, r, off+i); err != nil {
			return err
		}
	}
	d3, _ := cl.Document("c3")
	fmt.Printf("offline c3 sees:   %q (3 ops queued for the server)\n", jupiter.Render(d3))

	// Meanwhile, the online clients keep editing: c1 capitalizes the 'd',
	// c2 appends '!'.
	if err := cl.GenerateDel(1, 0); err != nil {
		return err
	}
	if err := cl.GenerateIns(1, 'D', 0); err != nil {
		return err
	}
	if _, err := cl.DeliverToServer(1); err != nil {
		return err
	}
	if _, err := cl.DeliverToServer(1); err != nil {
		return err
	}
	d2len, _ := cl.Document("c2")
	_ = d2len
	// c2 must first hear about c1's edits to see the current length; it
	// appends at its own current view.
	if _, err := cl.DeliverToClient(2); err != nil {
		return err
	}
	if _, err := cl.DeliverToClient(2); err != nil {
		return err
	}
	cur, _ := cl.Document("c2")
	if err := cl.GenerateIns(2, '!', len(cur)); err != nil {
		return err
	}
	if _, err := cl.DeliverToServer(2); err != nil {
		return err
	}
	srv, _ := cl.Document("server")
	fmt.Printf("online replicas:   %q (c3 has seen none of it)\n", jupiter.Render(srv))

	// Reconnect: deliver everything in both directions.
	if err := jupiter.Quiesce(cl); err != nil {
		return err
	}
	doc, err := jupiter.CheckConverged(cl)
	if err != nil {
		return err
	}
	fmt.Printf("after reconnect:   %q everywhere\n", jupiter.Render(doc))

	// The history still satisfies the specifications.
	for _, c := range cl.Clients() {
		cl.Read(c)
	}
	cl.ReadServer()
	h := cl.History()
	if err := jupiter.CheckConvergence(h); err != nil {
		return err
	}
	if err := jupiter.CheckWeak(h); err != nil {
		return err
	}
	fmt.Println("specs:             convergence PASS, weak-list PASS")

	// Metadata before and after garbage collection.
	before := totalStates(cl.Stats())
	// One more exchanged round lets the server learn everyone is caught up.
	if err := cl.GenerateIns(1, '.', 0); err != nil {
		return err
	}
	if err := jupiter.Quiesce(cl); err != nil {
		return err
	}
	if _, err := jupiter.AdvanceFrontier(cl); err != nil {
		return err
	}
	if err := jupiter.Quiesce(cl); err != nil {
		return err
	}
	after := totalStates(cl.Stats())
	fmt.Printf("state-space GC:    %d states retained before, %d after the frontier advance\n", before, after)
	return nil
}

func totalStates(stats []jupiter.SpaceStat) int {
	total := 0
	for _, s := range stats {
		total += s.States
	}
	return total
}
