// Quickstart: two users concurrently edit the document "efecte" — the
// motivating scenario of Figure 1 in the paper. User 1 inserts 'f' at
// position 1 while user 2 concurrently deletes the trailing 'e'. Without
// operational transformation the replicas would diverge ("effece" vs
// "effect"); the Jupiter protocol transforms the operations so everyone
// converges to "effect".
package main

import (
	"fmt"
	"log"

	"jupiter"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A cluster = one central server + n clients, connected by FIFO
	// channels, running the CSS Jupiter protocol.
	initial := jupiter.FromString("efecte", 100)
	cl, err := jupiter.NewCluster(jupiter.CSS, jupiter.Config{
		Clients: 2,
		Initial: initial,
		Record:  true,
	})
	if err != nil {
		return err
	}

	// Concurrent edits: neither client has seen the other's operation.
	if err := cl.GenerateIns(1, 'f', 1); err != nil { // user 1: Ins(f, 1)
		return err
	}
	if err := cl.GenerateDel(2, 5); err != nil { // user 2: Del(e, 5)
		return err
	}

	d1, _ := cl.Document("c1")
	d2, _ := cl.Document("c2")
	fmt.Printf("before synchronization: c1=%q  c2=%q\n",
		jupiter.Render(d1), jupiter.Render(d2))

	// Let the network deliver everything (the server serializes, transforms
	// and redirects the operations).
	if err := jupiter.Quiesce(cl); err != nil {
		return err
	}

	doc, err := jupiter.CheckConverged(cl)
	if err != nil {
		return err
	}
	fmt.Printf("after synchronization:  everyone sees %q\n", jupiter.Render(doc))

	// The recorded history satisfies the convergence property and the weak
	// list specification — the paper's Theorem 8.2 in action.
	h := cl.History()
	fmt.Printf("history: %d do events\n", h.Len())
	if err := jupiter.CheckConvergence(h); err != nil {
		return fmt.Errorf("convergence: %w", err)
	}
	if err := jupiter.CheckWeak(h); err != nil {
		return fmt.Errorf("weak list spec: %w", err)
	}
	fmt.Println("specs: convergence PASS, weak-list PASS")
	return nil
}
