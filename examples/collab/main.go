// Collab: a busy collaborative-editing session. Six users hammer on a
// shared document at once — every replica runs in its own goroutine,
// connected to the central server by FIFO channels, exactly the
// client/server architecture of Section 4.4 of the paper. The example runs
// the same workload under the CSS protocol, the classical CSCW protocol,
// and the RGA CRDT baseline, then compares their convergence and metadata
// footprints.
package main

import (
	"fmt"
	"log"
	"sort"

	"jupiter"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		clients = 6
		ops     = 40
		seed    = 2024
	)
	fmt.Printf("%d concurrent editors, %d operations each (seed %d)\n\n", clients, ops, seed)

	for _, p := range []jupiter.Protocol{jupiter.CSS, jupiter.CSCW, jupiter.RGA} {
		res, err := jupiter.RunAsync(p, jupiter.AsyncConfig{
			Clients:      clients,
			OpsPerClient: ops,
			Seed:         seed,
			DeleteRatio:  0.35,
			Record:       true,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}

		// Every replica (server + clients) must hold the same document.
		names := make([]string, 0, len(res.Docs))
		for name := range res.Docs {
			names = append(names, name)
		}
		sort.Strings(names)
		final := jupiter.Render(res.Docs[names[0]])
		converged := true
		for _, name := range names {
			if jupiter.Render(res.Docs[name]) != final {
				converged = false
			}
		}

		weak := "PASS"
		if err := jupiter.CheckWeak(res.History); err != nil {
			weak = "FAIL"
		}
		strong := "PASS"
		if err := jupiter.CheckStrong(res.History); err != nil {
			strong = "FAIL"
		}

		states, edges := 0, 0
		for _, s := range res.Stats {
			states += s.States
			edges += s.Edges
		}

		fmt.Printf("%-5s converged=%-5v weak=%s strong=%s  doc-len=%d  total-metadata: %d states / %d edges across %d structures\n",
			p, converged, weak, strong, len(res.Docs[names[0]]), states, edges, len(res.Stats))
	}

	fmt.Println("\nNote: each protocol run uses its own goroutine interleaving, so the final")
	fmt.Println("documents differ across protocols — what matters is that every run converges")
	fmt.Println("internally and satisfies its specifications. Under IDENTICAL deterministic")
	fmt.Println("schedules CSS and CSCW agree step for step (Theorem 7.1; see the test suite).")
	return nil
}
