# Development entry points. CI (.github/workflows/ci.yml) runs `make ci`.

GO ?= go

.PHONY: all build test race vet fmt-check fuzz fuzz-wire bench bench-smoke bench-compare bench-loopback bench-e14 sweep-e14 chaos chaos-socket replication-chaos migration-chaos serve-demo serve-replicated shard-smoke load-smoke load-chaos sweep-e15 sweep-e16 ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fails (with the offending file list) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Short CP1 fuzzing burst beyond the checked-in seed corpus.
fuzz:
	$(GO) test -fuzz=FuzzTransformCP1 -fuzztime=30s ./internal/ot

# Short adversarial-input burst against the wire frame codec.
fuzz-wire:
	$(GO) test -fuzz=FuzzWireDecode -fuzztime=10s ./internal/wire

bench:
	$(GO) test -run xxx -bench=. -benchmem .

# One iteration of every benchmark: proves they all still compile and run.
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime=1x .

# Compare two `go test -bench` output files (OLD=..., NEW=...) and fail on
# regressions past THRESHOLD (ratio) on METRIC. Example:
#   make bench > old.txt; ...change...; make bench > new.txt
#   make bench-compare OLD=old.txt NEW=new.txt THRESHOLD=1.20
METRIC ?= ns/op
THRESHOLD ?= 0
bench-compare:
	$(GO) run ./cmd/benchdiff -metric '$(METRIC)' -threshold $(THRESHOLD) $(OLD) $(NEW)

# The E10 loss sweep: CSS over the unreliable network at 0/1/5/20% drop.
chaos:
	$(GO) test -run xxx -bench=BenchmarkE10_ChaosLossSweep -benchtime=30x .

# Short seeded socket-chaos run: 4 real TCP clients through the
# fault-injecting proxy (internal/chaosproxy), convergence and the weak list
# spec checked per schedule. Raise CHAOS_SOCKET_SCHEDULES for longer sweeps.
chaos-socket:
	CHAOS_SOCKET_SCHEDULES=$${CHAOS_SOCKET_SCHEDULES:-6} $(GO) test -run 'TestSocket' -count=1 ./internal/server

# Loopback-TCP bench output for the nightly regression gate; pair with
# bench-compare against the checked-in BENCH_baseline.txt.
bench-loopback:
	$(GO) test -run NONE -bench 'BenchmarkE12_LoopbackTCP' -benchtime=3x -count=1 .

# One iteration of the E14 codec/batching matrix: proves every wire-protocol
# configuration still converges under bench load (PR-path smoke).
bench-e14:
	$(GO) test -run NONE -bench 'BenchmarkE14' -benchtime=1x -count=1 .

# Full E14 sweep; writes BENCH_e14_baseline.txt for the nightly gate.
sweep-e14:
	scripts/sweep_pipeline.sh

# Short seeded leader-kill chaos run: a 3-node replicated cluster with 4 TCP
# clients through the fault proxy, the leader fail-stopped mid-edit, failover
# and the serialization-order property checked per schedule. Raise
# REPL_CHAOS_SCHEDULES for longer sweeps (the nightly pins 100).
replication-chaos:
	REPL_CHAOS_SCHEDULES=$${REPL_CHAOS_SCHEDULES:-6} $(GO) test -run 'TestReplicatedLeaderKillChaos' -count=1 ./internal/server

# Seeded migration-under-chaos run: two shards behind fault proxies, a
# placement service ping-ponging the doc between them mid-edit, exactly-once
# delivery and the weak list spec checked per schedule. Raise
# MIGRATION_CHAOS_SCHEDULES for longer sweeps (the nightly pins 50).
migration-chaos:
	MIGRATION_CHAOS_SCHEDULES=$${MIGRATION_CHAOS_SCHEDULES:-4} $(GO) test -run 'TestMigration|TestWrongShard' -count=1 ./internal/placement

# End-to-end sharded-cluster smoke: jupiterplace + 2 shards, a document
# migrated between them mid-edit, clients reroute and converge, the move
# visible in the table and metrics.
shard-smoke:
	sh scripts/serve_sharded.sh

# The E16 shard-scaling sweep: placement-routed open load over thousands of
# zipf docs at 1 and 4 shards; writes BENCH_e16.json, the nightly gate's
# baseline.
sweep-e16:
	scripts/sweep_shards.sh

# End-to-end jupiterd smoke: two TCP clients, a forced reconnect, metrics,
# convergence assertion. Exits non-zero on divergence.
serve-demo:
	sh scripts/serve_demo.sh

# End-to-end replicated-cluster smoke: 3 nodes, leader SIGKILLed mid-session,
# clients fail over and converge, promotion visible in metrics.
serve-replicated:
	sh scripts/serve_replicated.sh

# Deterministic ~30s open-loop load smoke against a live jupiterd: seeded
# Poisson arrivals, drain barriers, sampled weak-spec check, SLO gate.
# jupiterload exits non-zero on any failure (EXPERIMENTS.md, E15).
load-smoke:
	sh scripts/load_smoke.sh

# Seeded chaos-under-load sweep: open load through the fault proxy at a
# 3-node cluster, leader fail-stopped mid-measure. Raise LOAD_CHAOS_SCHEDULES
# for longer sweeps (the nightly pins 50, the acceptance floor).
load-chaos:
	LOAD_CHAOS_SCHEDULES=$${LOAD_CHAOS_SCHEDULES:-4} $(GO) test -run 'TestChaosUnderLoad' -count=1 ./internal/loadgen

# Full E15 rate sweep; writes BENCH_e15.json, the nightly gate's baseline.
sweep-e15:
	scripts/sweep_load.sh

ci: fmt-check vet build test race fuzz-wire chaos-socket replication-chaos migration-chaos serve-demo serve-replicated shard-smoke load-smoke
