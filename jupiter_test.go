package jupiter_test

import (
	"encoding/json"
	"testing"

	"jupiter"
)

// TestPublicQuickstart exercises the README quick-start path through the
// public API only.
func TestPublicQuickstart(t *testing.T) {
	cl, err := jupiter.NewCluster(jupiter.CSS, jupiter.Config{Clients: 2, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.GenerateIns(1, 'h', 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.GenerateIns(2, 'i', 0); err != nil {
		t.Fatal(err)
	}
	if err := jupiter.Quiesce(cl); err != nil {
		t.Fatal(err)
	}
	doc, err := jupiter.CheckConverged(cl)
	if err != nil {
		t.Fatal(err)
	}
	// Tie at position 0: client 2 has the higher priority, so 'i' precedes.
	if got := jupiter.Render(doc); got != "ih" {
		t.Fatalf("converged to %q, want %q", got, "ih")
	}
	h := cl.History()
	if err := jupiter.CheckConvergence(h); err != nil {
		t.Fatal(err)
	}
	if err := jupiter.CheckWeak(h); err != nil {
		t.Fatal(err)
	}
}

// TestPublicScheduleAPI drives a schedule through the facade.
func TestPublicScheduleAPI(t *testing.T) {
	cl, err := jupiter.NewCluster(jupiter.CSCW, jupiter.Config{Clients: 2, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	var sched jupiter.Schedule
	sched = sched.Generate(1).Generate(2).ServerRecv(1).ServerRecv(2).
		ClientRecv(1).ClientRecv(1).ClientRecv(2).ClientRecv(2).Read(1)
	err = jupiter.RunSchedule(cl, sched, func(c jupiter.ClientID, k int) (bool, rune, int) {
		return true, rune('a' + c), 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jupiter.CheckConverged(cl); err != nil {
		t.Fatal(err)
	}
}

// TestPublicDocConstructors covers the document constructors.
func TestPublicDocConstructors(t *testing.T) {
	d := jupiter.NewDocument()
	td := jupiter.NewTreeDocument()
	if d.Len() != 0 || td.Len() != 0 {
		t.Fatal("fresh documents must be empty")
	}
	fs := jupiter.FromString("abc", 9)
	if fs.String() != "abc" {
		t.Fatalf("FromString = %q", fs.String())
	}
	if jupiter.Render(fs.Elems()) != "abc" {
		t.Fatal("Render mismatch")
	}
}

// TestHistoryJSONRoundTrip: a recorded history survives JSON encode/decode
// and still checks identically.
func TestHistoryJSONRoundTrip(t *testing.T) {
	initial := jupiter.FromString("seed", 100)
	cl, err := jupiter.NewCluster(jupiter.CSS, jupiter.Config{Clients: 3, Initial: initial, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := jupiter.RunRandom(cl, jupiter.Workload{Seed: 5, OpsPerClient: 6, DeleteRatio: 0.4}, true); err != nil {
		t.Fatal(err)
	}
	h := cl.History()

	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back jupiter.History
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != h.Len() {
		t.Fatalf("round trip lost events: %d vs %d", back.Len(), h.Len())
	}
	if len(back.Seed) != len(h.Seed) {
		t.Fatalf("round trip lost seed: %d vs %d", len(back.Seed), len(h.Seed))
	}
	if err := back.WellFormed(); err != nil {
		t.Fatal(err)
	}
	// Checker outcomes identical.
	for i, e := range h.Events {
		b := back.Events[i]
		if e.Replica != b.Replica || e.Op != b.Op || len(e.Returned) != len(b.Returned) || !e.Visible.Equal(b.Visible) {
			t.Fatalf("event %d differs after round trip:\n %v\n %v", i, e, b)
		}
	}
	if err := jupiter.CheckWeak(&back); err != nil {
		t.Fatal(err)
	}
	if err := jupiter.CheckConvergence(&back); err != nil {
		t.Fatal(err)
	}
}

// TestHistoryJSONErrors covers decode error paths.
func TestHistoryJSONErrors(t *testing.T) {
	cases := []string{
		`{"events":[{"replica":"c1","op":{"kind":"wat","pos":0,"id":{"client":1,"seq":1}}}]}`,
		`{"events":[{"replica":"c1","op":{"kind":"ins","val":"ab","pos":0,"id":{"client":1,"seq":1}}}]}`,
		`{"events":[{"replica":"c1","op":{"kind":"del","pos":0,"id":{"client":1,"seq":1}}}]}`,
		`{"seed":[{"val":"","id":{"client":1,"seq":1}}],"events":[]}`,
		`not json`,
	}
	for i, c := range cases {
		var h jupiter.History
		if err := json.Unmarshal([]byte(c), &h); err == nil {
			t.Errorf("case %d: want decode error", i)
		}
	}
}

// TestPublicAsync runs the concurrent runtime through the facade.
func TestPublicAsync(t *testing.T) {
	res, err := jupiter.RunAsync(jupiter.CSS, jupiter.AsyncConfig{
		Clients: 3, OpsPerClient: 5, Seed: 1, DeleteRatio: 0.2, Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) != 4 {
		t.Fatalf("docs = %d", len(res.Docs))
	}
	if err := jupiter.CheckWeak(res.History); err != nil {
		t.Fatal(err)
	}
}

// TestViolationSurfacing: a violation from the facade unwraps via
// AsViolation.
func TestViolationSurfacing(t *testing.T) {
	cl, err := jupiter.NewCluster(jupiter.Broken, jupiter.Config{Clients: 2, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	// Two concurrent same-position inserts diverge under the naive tie.
	if err := cl.GenerateIns(1, 'a', 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.GenerateIns(2, 'b', 0); err != nil {
		t.Fatal(err)
	}
	if err := jupiter.Quiesce(cl); err != nil {
		t.Fatal(err)
	}
	cl.Read(1)
	cl.Read(2)
	err = jupiter.CheckWeak(cl.History())
	if err == nil {
		t.Fatal("want violation")
	}
	if _, ok := jupiter.AsViolation(err); !ok {
		t.Fatalf("not a structured violation: %v", err)
	}
}
