// Package jupiter is a Go implementation of the replicated list object and
// the Jupiter protocols from "Specification and Implementation of Replicated
// List: The Jupiter Protocol Revisited" (Wei, Huang, Lu; PODC 2018 brief
// announcement / arXiv:1708.04754).
//
// It provides:
//
//   - the CSS (Compact State-Space) Jupiter protocol, built on the paper's
//     n-ary ordered state-space (the paper's contribution);
//   - the classical CSCW Jupiter protocol, provably equivalent under the
//     same schedules (Theorem 7.1 — checked by this repository's tests);
//   - an RGA CRDT baseline that satisfies the strong list specification;
//   - executable checkers for the convergence property and the weak/strong
//     list specifications of Attiya et al.;
//   - simulation harnesses: deterministic schedules, seeded random
//     interleavings, and a concurrent goroutine/channel runtime.
//
// Quick start:
//
//	cl, _ := jupiter.NewCluster(jupiter.CSS, jupiter.Config{Clients: 2, Record: true})
//	_ = cl.GenerateIns(1, 'h', 0)
//	_ = cl.GenerateIns(2, 'i', 0)
//	_ = jupiter.Quiesce(cl)
//	doc, _ := jupiter.CheckConverged(cl)
//	fmt.Println(jupiter.Render(doc)) // the converged list
//
// See examples/ for complete programs and DESIGN.md for the paper-to-module
// map.
package jupiter

import (
	"jupiter/internal/core"
	"jupiter/internal/dcss"
	"jupiter/internal/editor"
	"jupiter/internal/faultnet"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/sim"
	"jupiter/internal/spec"
)

// Core identity and data types, re-exported for users of the public API.
type (
	// ClientID identifies a client replica (1-based).
	ClientID = opid.ClientID
	// OpID uniquely identifies an original operation / inserted element.
	OpID = opid.OpID
	// Elem is one element of the replicated list.
	Elem = list.Elem
	// Doc is a local document (slice- or tree-backed).
	Doc = list.Doc
	// History is the recorded abstract execution consumed by the checkers.
	History = core.History
	// Event is a do event of a history.
	Event = core.Event
	// Schedule is a deterministic interleaving script (Definition 4.7).
	Schedule = core.Schedule
	// Cluster is a deterministic client/server system under test.
	Cluster = sim.Cluster
	// Config configures NewCluster.
	Config = sim.Config
	// Workload is a seeded synthetic editing workload.
	Workload = sim.Workload
	// AsyncConfig configures RunAsync.
	AsyncConfig = sim.AsyncConfig
	// AsyncResult is the outcome of a concurrent run.
	AsyncResult = sim.AsyncResult
	// SpaceStat describes one replica metadata structure (E1/E3 stats).
	SpaceStat = sim.SpaceStat
	// Protocol names a protocol implementation.
	Protocol = sim.Protocol
	// Violation describes a specification violation found by a checker.
	Violation = spec.Violation
)

// The available protocol implementations.
const (
	// CSS is the paper's Compact State-Space Jupiter protocol (Section 6).
	CSS = sim.CSS
	// CSCW is the classical Jupiter protocol (Section 5).
	CSCW = sim.CSCW
	// RGA is the CRDT baseline satisfying the strong list specification.
	RGA = sim.RGA
	// Logoot is the tombstone-free CRDT baseline (also strong).
	Logoot = sim.Logoot
	// TreeDoc is the binary-tree CRDT baseline with tombstones (also strong).
	TreeDoc = sim.TreeDoc
	// WOOT is the bounded-character CRDT baseline with tombstones (also
	// strong).
	WOOT = sim.WOOT
	// Broken is the deliberately incorrect protocol of Example 8.1, for
	// exercising the checkers.
	Broken = sim.Broken
)

// ServerName is the replica name of the central server in documents and
// histories.
const ServerName = opid.ServerName

// NewCluster builds a deterministic cluster running the given protocol.
func NewCluster(p Protocol, cfg Config) (Cluster, error) {
	return sim.NewCluster(p, cfg)
}

// NewDocument returns an empty slice-backed document.
func NewDocument() Doc { return list.NewDocument() }

// NewTreeDocument returns an empty tree-backed document (O(log n) edits).
func NewTreeDocument() Doc { return list.NewTreeDocument() }

// FromString builds a document from a string, assigning each rune a unique
// element identity under the pseudo-client seed.
func FromString(s string, seed ClientID) Doc { return list.FromString(s, seed) }

// Render converts an element slice to its payload string.
func Render(elems []Elem) string { return list.Render(elems) }

// Quiesce delivers every in-flight message until the cluster is quiet.
func Quiesce(cl Cluster) error { return sim.Quiesce(cl) }

// RunRandom drives the cluster through a seeded random interleaving of the
// workload, then quiesces and records final reads.
func RunRandom(cl Cluster, w Workload, withReads bool) error {
	return sim.RunRandom(cl, w, withReads)
}

// RunSchedule drives the cluster through an explicit schedule; ops supplies
// the parameters of each generation step.
func RunSchedule(cl Cluster, sched Schedule, ops func(c ClientID, k int) (ins bool, val rune, pos int)) error {
	return sim.RunSchedule(cl, sched, ops)
}

// RunAsync executes a workload with one goroutine per replica, connected by
// FIFO channels; it returns after global quiescence.
func RunAsync(p Protocol, cfg AsyncConfig) (*AsyncResult, error) {
	return sim.RunAsync(p, cfg)
}

// CheckConverged verifies all replicas hold the identical document and
// returns it.
func CheckConverged(cl Cluster) ([]Elem, error) { return sim.CheckConverged(cl) }

// AdvanceFrontier triggers the CSS state-space garbage-collection extension.
func AdvanceFrontier(cl Cluster) (bool, error) { return sim.AdvanceFrontier(cl) }

// CheckConvergence checks the convergence property Acp (Definition 3.1).
func CheckConvergence(h *History) error { return spec.CheckConvergence(h) }

// CheckWeak checks the weak list specification Aweak (Definition 3.3).
func CheckWeak(h *History) error { return spec.CheckWeak(h) }

// CheckStrong checks the strong list specification Astrong (Definition 3.2).
func CheckStrong(h *History) error { return spec.CheckStrong(h) }

// AsViolation extracts the structured violation from a checker error.
func AsViolation(err error) (*Violation, bool) { return spec.AsViolation(err) }

// Distributed (server-less) CSS — the paper's future-work extension.
type (
	// Mesh is a full mesh of distributed-CSS peers (no central server),
	// ordered by Lamport-timestamp total-order broadcast.
	Mesh = dcss.Cluster
	// MeshPeer is one replica of the distributed protocol.
	MeshPeer = dcss.Peer
	// MeshAsyncConfig configures RunMeshAsync.
	MeshAsyncConfig = dcss.AsyncConfig
	// MeshAsyncResult is the outcome of a concurrent mesh run.
	MeshAsyncResult = dcss.AsyncResult
)

// NewMesh builds an n-peer distributed-CSS mesh.
func NewMesh(n int, initial Doc, record bool) (*Mesh, error) {
	return dcss.NewCluster(n, initial, record)
}

// RunMeshAsync runs the distributed protocol with one goroutine per peer.
func RunMeshAsync(cfg MeshAsyncConfig) (*MeshAsyncResult, error) {
	return dcss.RunAsync(cfg)
}

// Editor layer — caret- and selection-aware editing sessions.
type (
	// Editor is a text-editing session over a CSS client with caret and
	// selection tracking across concurrent remote edits.
	Editor = editor.Editor
	// EditorSession runs several editors against one in-process server.
	EditorSession = editor.Session
)

// NewEditorSession creates n editors collaborating over an optional initial
// document. Drive the editors, then call Sync to exchange all edits.
func NewEditorSession(n int, initial Doc) (*EditorSession, error) {
	return editor.NewSession(n, initial)
}

// Unreliable-network fault injection (chaos testing).
type (
	// FaultConfig is a deterministic, seed-driven fault schedule for the
	// unreliable-network runtime: per-packet drop/duplication/reorder/delay
	// probabilities plus timed partitions and replica crashes. Setting
	// AsyncConfig.Faults routes RunAsync through this runtime.
	FaultConfig = faultnet.Config
	// FaultPartition severs one client's links (or all, Client == -1) for a
	// window of virtual time.
	FaultPartition = faultnet.Partition
	// FaultCrash stops a replica at a virtual time and recovers it later —
	// from its persisted snapshot, or (LostState) as a fresh replica rejoined
	// from a server snapshot.
	FaultCrash = faultnet.Crash
	// NetStats counts what the fault layer and the session layer did during
	// a chaos run (drops, duplicates, retransmissions, suppressed dups, ...).
	NetStats = faultnet.Stats
)

// ChaosHorizon returns the virtual-time window within which a chaos run with
// the given per-client operation count generates its workload — the sensible
// range for scheduling partitions and crashes.
func ChaosHorizon(opsPerClient int) int { return sim.ChaosHorizon(opsPerClient) }

// Workload position profiles.
type (
	// Profile selects a workload's position distribution.
	Profile = sim.Profile
)

// The available workload profiles.
const (
	// ProfileUniform draws edit positions uniformly (default).
	ProfileUniform = sim.ProfileUniform
	// ProfileAppend edits only at the end of the document.
	ProfileAppend = sim.ProfileAppend
	// ProfileTyping models per-client typing cursors with occasional jumps.
	ProfileTyping = sim.ProfileTyping
	// ProfileHotspot concentrates edits near the front.
	ProfileHotspot = sim.ProfileHotspot
)
